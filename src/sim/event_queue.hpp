#pragma once
// Cancellable pending-event queue for the discrete-event simulator.
//
// Hot-path layout (this is the engine every simulated second runs through):
//   * events live in a slab of generation-tagged slots; an EventId encodes
//     (slot index, generation), so cancel() is two array reads — no hashing,
//     no per-event node allocation,
//   * a 4-ary implicit heap orders small (time, seq, slot) entries — the sort
//     key lives in the heap entry itself, so sifting never gathers from the
//     slot slab; pop() moves the winning callback out of its slot instead of
//     copying it,
//   * callbacks are sim::InlineCallback (64-byte small-buffer, move-only),
//   * cancel() is lazy — the heap discards dead entries on pop — but bounded:
//     when more than half the heap is dead it is compacted in place, so a
//     cancel-heavy workload cannot grow the heap without bound,
//   * schedule_periodic() keeps one slot alive across repeating ticks (the
//     re-arm costs a heap push, not a fresh allocation + schedule).
//
// Events at the same instant fire in schedule order (a monotonically
// increasing sequence number breaks ties), making simulations deterministic.
// A periodic event re-arms *after* its callback returns, so events the
// callback schedules at the next tick's instant fire before that tick —
// exactly the ordering the old self-rescheduling PeriodicTask produced.

#include <cstdint>
#include <vector>

#include "sim/inline_callback.hpp"
#include "util/time.hpp"

namespace bicord::sim {

using EventCallback = InlineCallback;
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Enqueues `cb` to fire at `when`. Returns a non-zero id usable with
  /// cancel().
  EventId schedule(TimePoint when, EventCallback cb);

  /// Enqueues `cb` to fire at `first` and then every `period` after, reusing
  /// one slot across ticks. cancel() stops it (also from inside its own
  /// callback). Requires period > 0.
  EventId schedule_periodic(TimePoint first, Duration period, EventCallback cb);

  /// Changes a periodic event's period; takes effect at the next re-arm (the
  /// already-armed firing keeps its time). False if `id` is not a live
  /// periodic event.
  bool set_period(EventId id, Duration period);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// empty()/size() count every event that can still fire, including a
  /// periodic event whose tick is currently executing (it re-arms when the
  /// tick returns, unless the tick cancels it). Code running inside a
  /// callback therefore sees a consistent count.
  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest event. Requires !empty(). For a
  /// periodic event the returned callback is a trampoline that runs the
  /// stored tick and then re-arms the slot.
  struct Fired {
    TimePoint time;
    EventId id;
    EventCallback callback;
  };
  Fired pop();

  // --- introspection (tests and benches) -----------------------------------

  /// Cancelled entries still occupying heap space (bounded at ~50% by
  /// compaction).
  [[nodiscard]] std::size_t dead_entries() const { return dead_; }
  /// Total slots ever created (slab high-water mark).
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }
  /// Heap compactions triggered by the dead-fraction bound.
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

 private:
  enum class SlotState : std::uint8_t {
    Free,        ///< on the free list
    Queued,      ///< live, in the heap
    Dead,        ///< cancelled, still in the heap awaiting pop/compaction
    Executing,   ///< periodic, callback currently running (not in the heap,
                 ///< but still counted live: it re-arms unless cancelled)
    ExecCancelled,  ///< periodic, cancelled from inside its own callback
  };

  struct Slot {
    EventCallback callback;
    TimePoint time;
    Duration period;  ///< zero = one-shot
    std::uint64_t seq = 0;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoSlot;
    SlotState state = SlotState::Free;
  };

  /// Heap entry: the full sort key plus the owning slot, packed to 16 bytes
  /// so a 4-ary sibling group spans at most two cache lines. Comparisons
  /// during sift touch only the (contiguous) heap array, never the slot slab.
  /// The sequence number occupies the high bits of `seq_slot`, so comparing
  /// the packed word breaks same-instant ties exactly like comparing seq
  /// (sequence numbers are unique, so the slot bits never decide).
  struct HeapEntry {
    TimePoint time;
    std::uint64_t seq_slot;
  };

  /// Slot indices fit 20 bits (1M simultaneous events) and sequence numbers
  /// 44 bits (17 trillion schedules); both are enforced loudly rather than
  /// silently wrapped.
  static constexpr std::uint32_t kSlotBits = 20;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = (1ULL << (64 - kSlotBits)) - 1;

  [[nodiscard]] static HeapEntry make_entry(TimePoint time, std::uint64_t seq,
                                            std::uint32_t slot) {
    return HeapEntry{time, (seq << kSlotBits) | slot};
  }

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  /// Compaction triggers only above this heap size (small queues never pay).
  static constexpr std::size_t kCompactMinHeap = 64;

  [[nodiscard]] static EventId encode(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }

  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    // The equality test branch is almost always false (distinct times), so it
    // predicts near-perfectly; the result itself is a flag, not a branch.
    if (a.time != b.time) return a.time < b.time;
    return a.seq_slot < b.seq_slot;
  }

  EventId enqueue(TimePoint when, Duration period, EventCallback&& cb);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);
  void heap_push(HeapEntry entry);
  void heap_pop_root();
  void sift_down(std::size_t i);
  /// Removes dead entries from the heap top; frees their slots.
  void prune_dead_top() const;
  /// Rebuilds the heap without dead entries once >50% of it is dead.
  void maybe_compact();
  /// Invoked by the periodic trampoline: runs the tick, then re-arms or
  /// frees the slot depending on whether the tick cancelled itself.
  void run_periodic(std::uint32_t idx);

  // next_time()/pop() share lazy dead-entry pruning, so the structures are
  // mutable the same way the old drop_dead() path was.
  mutable std::vector<Slot> slots_;
  mutable std::vector<HeapEntry> heap_;
  mutable std::uint32_t free_head_ = kNoSlot;
  mutable std::size_t dead_ = 0;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace bicord::sim
