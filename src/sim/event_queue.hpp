#pragma once
// Cancellable pending-event queue for the discrete-event simulator.
//
// Implemented as a binary heap plus a set of live event ids: cancel()
// removes the id from the live set and the heap discards dead entries on
// pop. Events at the same instant fire in schedule order (a monotonically
// increasing sequence number breaks ties), making simulations deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace bicord::sim {

using EventCallback = std::function<void()>;
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  /// Enqueues `cb` to fire at `when`. Returns a non-zero id usable with
  /// cancel().
  EventId schedule(TimePoint when, EventCallback cb);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id is invalid.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }

  /// Time of the earliest pending event. Requires !empty().
  [[nodiscard]] TimePoint next_time() const;

  /// Removes and returns the earliest event. Requires !empty().
  struct Fired {
    TimePoint time;
    EventId id;
    EventCallback callback;
  };
  Fired pop();

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    EventId id;
    EventCallback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
};

}  // namespace bicord::sim
