#pragma once
// Deterministic pseudo-random number generation for reproducible simulation.
//
// All stochastic behaviour in the library flows from a single seeded
// xoshiro256++ generator, so any experiment can be replayed exactly by
// reusing its seed. The generator satisfies std::uniform_random_bit_generator
// and can therefore also be used with <random> distributions, but the
// built-in helpers below are preferred: they are guaranteed stable across
// standard-library implementations.

#include <cstdint>
#include <limits>

#include "util/time.hpp"

namespace bicord {

/// xoshiro256++ 1.0 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64, per the authors' guidance.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);
  /// Standard normal via inverse-CDF (Acklam); exactly one uniform draw per
  /// variate, so the stream position never depends on call history.
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);
  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 60).
  std::int64_t poisson(double mean);
  /// Rayleigh-distributed amplitude with the given scale sigma.
  double rayleigh(double sigma);

  /// Exponentially distributed duration with the given mean; never negative.
  Duration exp_duration(Duration mean);
  /// Uniform duration in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi);

  /// Derives an independent child generator (for per-device streams).
  /// Advances the parent by one draw.
  [[nodiscard]] Rng split();

  /// Derives the k-th child stream as a pure function of the current state
  /// and k, WITHOUT advancing the parent. Sibling streams (distinct k) and
  /// the parent's own continuation are decorrelated through SplitMix64.
  /// This is the per-trial stream API: `Rng(seed).split(trial)` gives every
  /// trial of an experiment an independent, reproducible generator.
  [[nodiscard]] Rng split(std::uint64_t k) const;

  /// Advances 2^128 steps (the canonical xoshiro256++ jump), yielding a
  /// stream that cannot overlap the un-jumped one for 2^128 draws.
  void jump();

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace bicord
