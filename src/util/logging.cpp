#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace bicord {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mutex;
std::function<void(const std::string&)> g_sink;  // guarded by g_sink_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(const std::string& text) {
  std::string t;
  t.reserve(text.size());
  for (const char c : text) {
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (t == "trace") return LogLevel::Trace;
  if (t == "debug") return LogLevel::Debug;
  if (t == "info") return LogLevel::Info;
  if (t == "warn" || t == "warning") return LogLevel::Warn;
  if (t == "error") return LogLevel::Error;
  if (t == "off" || t == "none") return LogLevel::Off;
  return std::nullopt;
}

void refresh_log_level_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — init-time env read, before any pool spawns threads.
  const char* env = std::getenv("BICORD_LOG_LEVEL");
  if (env == nullptr) return;
  if (const auto level = parse_log_level(env)) {
    set_log_level(*level);
  } else {
    std::fprintf(stderr, "bicord: ignoring unknown BICORD_LOG_LEVEL '%s'\n", env);
  }
}

namespace {
// Applies BICORD_LOG_LEVEL before main() runs, mirroring BICORD_JOBS.
[[maybe_unused]] const bool g_env_level_applied = [] {
  refresh_log_level_from_env();
  return true;
}();
}  // namespace

void set_log_sink(std::function<void(const std::string&)> sink) {
  const std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace detail {

bool enabled(LogLevel level) { return level >= log_level(); }

void emit(LogLevel level, TimePoint sim_now, const std::string& component,
          const std::string& message) {
  std::string line = "[" + sim_now.to_string() + "] " + level_name(level) + " " +
                     component + ": " + message;
  const std::lock_guard lock(g_sink_mutex);
  if (g_sink) {
    g_sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace detail
}  // namespace bicord
