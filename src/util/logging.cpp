#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace bicord {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mutex;
std::function<void(const std::string&)> g_sink;  // guarded by g_sink_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_sink(std::function<void(const std::string&)> sink) {
  const std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace detail {

bool enabled(LogLevel level) { return level >= log_level(); }

void emit(LogLevel level, TimePoint sim_now, const std::string& component,
          const std::string& message) {
  std::string line = "[" + sim_now.to_string() + "] " + level_name(level) + " " +
                     component + ": " + message;
  const std::lock_guard lock(g_sink_mutex);
  if (g_sink) {
    g_sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace detail
}  // namespace bicord
