#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace bicord {

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

void AsciiTable::add_separator() { separators_.push_back(rows_.size()); }

std::string AsciiTable::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string AsciiTable::cell(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string AsciiTable::percent(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string AsciiTable::render() const {
  // Compute column widths over header + all rows.
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::ostringstream os;
  auto hline = [&os, &widths] {
    os << '+';
    for (auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&os, &widths](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < row.size() ? row[i] : std::string{};
      os << ' ' << c << std::string(widths[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  hline();
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    emit(rows_[i]);
    if (std::find(separators_.begin(), separators_.end(), i + 1) != separators_.end()) {
      hline();
    }
  }
  hline();
  return os.str();
}

void AsciiTable::print(std::ostream& os) const { os << render(); }

std::string bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                      std::size_t width, const std::string& unit) {
  double peak = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : bars) {
    peak = std::max(peak, v);
    label_w = std::max(label_w, label.size());
  }
  std::ostringstream os;
  for (const auto& [label, v] : bars) {
    const auto n = peak > 0.0
        ? static_cast<std::size_t>(v / peak * static_cast<double>(width))
        : std::size_t{0};
    os << label << std::string(label_w - label.size(), ' ') << " | "
       << std::string(n, '#') << ' ' << AsciiTable::cell(v, 2) << unit << '\n';
  }
  return os.str();
}

}  // namespace bicord
