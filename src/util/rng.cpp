#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace bicord {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  // Lemire-style rejection-free multiply-shift is fine here; modulo bias is
  // negligible for the small ranges used in simulation, but reject anyway.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  // Inverse-CDF via Acklam's rational approximation (|error| < 1.2e-9,
  // far below any model-fidelity concern here). Exactly one uniform draw
  // per variate keeps the stream position independent of call history —
  // the property split() consumers rely on — and the central region needs
  // no libm call at all, unlike Box-Muller's log + cos, which dominated
  // the per-transmission fading path.
  double u = uniform();
  while (u <= 0.0) u = uniform();  // u in (0, 1)

  constexpr double a0 = -3.969683028665376e+01, a1 = 2.209460984245205e+02,
                   a2 = -2.759285104469687e+02, a3 = 1.383577518672690e+02,
                   a4 = -3.066479806614716e+01, a5 = 2.506628277459239e+00;
  constexpr double b0 = -5.447609879822406e+01, b1 = 1.615858368580409e+02,
                   b2 = -1.556989798598866e+02, b3 = 6.680131188771972e+01,
                   b4 = -1.328068155288572e+01;
  constexpr double c0 = -7.784894002430293e-03, c1 = -3.223964580411365e-01,
                   c2 = -2.400758277161838e+00, c3 = -2.549732539343734e+00,
                   c4 = 4.374664141464968e+00, c5 = 2.938163982698783e+00;
  constexpr double d0 = 7.784695709041462e-03, d1 = 3.224671290700398e-01,
                   d2 = 2.445134137142996e+00, d3 = 3.754408661907416e+00;
  constexpr double kLow = 0.02425;

  if (u < kLow) {  // lower tail
    const double q = std::sqrt(-2.0 * std::log(u));
    return (((((c0 * q + c1) * q + c2) * q + c3) * q + c4) * q + c5) /
           ((((d0 * q + d1) * q + d2) * q + d3) * q + 1.0);
  }
  if (u > 1.0 - kLow) {  // upper tail
    const double q = std::sqrt(-2.0 * std::log(1.0 - u));
    return -(((((c0 * q + c1) * q + c2) * q + c3) * q + c4) * q + c5) /
           ((((d0 * q + d1) * q + d2) * q + d3) * q + 1.0);
  }
  const double q = u - 0.5;  // central region (95% of draws)
  const double r = q * q;
  return (((((a0 * r + a1) * r + a2) * r + a3) * r + a4) * r + a5) * q /
         (((((b0 * r + b1) * r + b2) * r + b3) * r + b4) * r + 1.0);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

std::int64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean > 60.0) {
    const double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  std::int64_t k = 0;
  double prod = uniform();
  while (prod > limit) {
    ++k;
    prod *= uniform();
  }
  return k;
}

double Rng::rayleigh(double sigma) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return sigma * std::sqrt(-2.0 * std::log(u));
}

Duration Rng::exp_duration(Duration mean) {
  return Duration::from_us(
      static_cast<std::int64_t>(exponential(static_cast<double>(mean.us()))));
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  return Duration::from_us(uniform_int(lo.us(), hi.us()));
}

Rng Rng::split() { return Rng{next()}; }

Rng Rng::split(std::uint64_t k) const {
  // Fold the stream index and the four state words through a SplitMix64
  // chain; the child's 64-bit seed is then expanded to full state by the
  // constructor. The parent state is only read, never written.
  std::uint64_t x = k;
  std::uint64_t seed = splitmix64(x);
  for (const std::uint64_t w : s_) {
    x ^= w;
    seed ^= splitmix64(x);
  }
  return Rng{seed};
}

void Rng::jump() {
  // Canonical xoshiro256++ jump polynomial (Blackman & Vigna): equivalent
  // to 2^128 calls to next().
  static constexpr std::uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                            0xD5A61266F0C9392CULL,
                                            0xA9582618E03FC9AAULL,
                                            0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace bicord
