#pragma once
// Strong time types for the discrete-event simulation.
//
// All simulation time is measured in integer microseconds. Using strong
// types (rather than bare int64_t) prevents accidentally mixing durations
// with absolute instants, and makes unit intent explicit at call sites
// (`5_ms`, `Duration::from_us(192)`).

#include <cstdint>
#include <compare>
#include <limits>
#include <ostream>
#include <string>

namespace bicord {

/// A span of simulated time, in whole microseconds. May be negative in
/// intermediate arithmetic but most APIs require non-negative values.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration from_us(std::int64_t us) { return Duration{us}; }
  [[nodiscard]] static constexpr Duration from_ms(std::int64_t ms) { return Duration{ms * 1000}; }
  [[nodiscard]] static constexpr Duration from_sec(std::int64_t s) { return Duration{s * 1'000'000}; }
  /// Rounds to the nearest microsecond.
  [[nodiscard]] static constexpr Duration from_sec_f(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5))};
  }
  [[nodiscard]] static constexpr Duration from_ms_f(double ms) { return from_sec_f(ms / 1e3); }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{us_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{us_ / k}; }
  /// Integer ratio of two durations (how many `o` fit into *this).
  constexpr std::int64_t operator/(Duration o) const { return us_ / o.us_; }
  constexpr Duration operator-() const { return Duration{-us_}; }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An absolute instant on the simulation clock (microseconds since start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint from_us(std::int64_t us) { return TimePoint{us}; }
  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{us_ + d.us()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{us_ - d.us()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::from_us(us_ - o.us_); }
  constexpr TimePoint& operator+=(Duration d) { us_ += d.us(); return *this; }

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

inline constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

namespace time_literals {
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::from_us(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::from_ms(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_sec(unsigned long long v) {
  return Duration::from_sec(static_cast<std::int64_t>(v));
}
}  // namespace time_literals

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, TimePoint t);

}  // namespace bicord
