#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace bicord {

namespace {
std::string format_us(std::int64_t us) {
  char buf[64];
  const double a = std::abs(static_cast<double>(us));
  if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(us) / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(us));
  }
  return buf;
}
}  // namespace

std::string Duration::to_string() const { return format_us(us_); }
std::string TimePoint::to_string() const { return format_us(us_); }

std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.to_string(); }
std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << t.to_string(); }

}  // namespace bicord
