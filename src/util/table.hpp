#pragma once
// ASCII table rendering for bench output (paper-style tables and figures).

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace bicord {

/// Column-aligned ASCII table. Rows are added as strings (use `cell` helpers
/// for numeric formatting); render() pads every column to its widest cell.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Adds a horizontal separator after the current last row.
  void add_separator();

  [[nodiscard]] std::string render() const;
  void print(std::ostream& os) const;

  /// Formats a double with the given precision.
  [[nodiscard]] static std::string cell(double v, int precision = 3);
  [[nodiscard]] static std::string cell(std::int64_t v);
  /// Formats a ratio as a percentage ("42.3%").
  [[nodiscard]] static std::string percent(double ratio, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> separators_;  // indices into rows_ after which to draw
};

/// Renders a simple horizontal bar chart (one bar per labelled value),
/// scaled to `width` characters at the maximum value. Used by benches to
/// approximate the paper's figures in text form.
[[nodiscard]] std::string bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                                    std::size_t width = 50,
                                    const std::string& unit = {});

}  // namespace bicord
