#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace bicord {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  values_.push_back(x);
  sorted_ = false;
}

double Samples::mean() const { return mean_of(values_); }

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  if (values_.empty()) throw std::logic_error("Samples::min on empty set");
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) throw std::logic_error("Samples::max on empty set");
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::quantile(double q) const {
  if (values_.empty()) throw std::logic_error("Samples::quantile on empty set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q outside [0,1]");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
  counts_.resize(bins, 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::render(std::size_t width) const {
  std::ostringstream os;
  const std::uint64_t peak = counts_.empty()
      ? 0
      : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = peak
        ? static_cast<std::size_t>(counts_[i] * width / peak)
        : std::size_t{0};
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

}  // namespace bicord
