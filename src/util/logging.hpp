#pragma once
// Minimal leveled logger. Simulation-hot paths log at Debug/Trace which is
// compiled to a branch on a global level; there is no allocation unless the
// message is actually emitted.

#include <functional>
#include <sstream>
#include <string>

#include "util/time.hpp"

namespace bicord {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log threshold; messages below it are suppressed.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Redirects log output (default: stderr). Pass nullptr to restore default.
void set_log_sink(std::function<void(const std::string&)> sink);

namespace detail {
void emit(LogLevel level, TimePoint sim_now, const std::string& component,
          const std::string& message);
[[nodiscard]] bool enabled(LogLevel level);
}  // namespace detail

/// Usage: BICORD_LOG(Info, now, "wifi.mac", "CTS sent, nav=" << nav);
#define BICORD_LOG(level, now, component, expr)                                 \
  do {                                                                          \
    if (::bicord::detail::enabled(::bicord::LogLevel::level)) {                 \
      std::ostringstream bicord_log_os_;                                        \
      bicord_log_os_ << expr;                                                   \
      ::bicord::detail::emit(::bicord::LogLevel::level, (now), (component),     \
                             bicord_log_os_.str());                             \
    }                                                                           \
  } while (0)

}  // namespace bicord
