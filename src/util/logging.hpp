#pragma once
// Minimal leveled logger. Simulation-hot paths log at Debug/Trace which is
// compiled to a branch on a global level; there is no allocation unless the
// message is actually emitted.

#include <functional>
#include <optional>
#include <sstream>
#include <string>

#include "util/time.hpp"

namespace bicord {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global log threshold; messages below it are suppressed.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses "trace" | "debug" | "info" | "warn" | "error" | "off"
/// (case-insensitive). Returns nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(const std::string& text);

/// Re-reads the BICORD_LOG_LEVEL environment variable and applies it (no-op
/// when unset or unparseable). Called once automatically before main(); tools
/// and tests may call it again after mutating the environment.
void refresh_log_level_from_env();

/// Redirects log output (default: stderr). Pass nullptr to restore default.
void set_log_sink(std::function<void(const std::string&)> sink);

namespace detail {
void emit(LogLevel level, TimePoint sim_now, const std::string& component,
          const std::string& message);
[[nodiscard]] bool enabled(LogLevel level);
}  // namespace detail

/// Usage: BICORD_LOG(Info, now, "wifi.mac", "CTS sent, nav=" << nav);
#define BICORD_LOG(level, now, component, expr)                                 \
  do {                                                                          \
    if (::bicord::detail::enabled(::bicord::LogLevel::level)) {                 \
      std::ostringstream bicord_log_os_;                                        \
      bicord_log_os_ << expr;                                                   \
      ::bicord::detail::emit(::bicord::LogLevel::level, (now), (component),     \
                             bicord_log_os_.str());                             \
    }                                                                           \
  } while (0)

}  // namespace bicord
