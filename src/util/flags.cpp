#include "util/flags.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace bicord {

Flags::Flags(std::string program_description)
    : description_(std::move(program_description)) {}

namespace {
const char* type_name(int t) {
  switch (t) {
    case 0: return "string";
    case 1: return "int";
    case 2: return "double";
    case 3: return "bool";
  }
  return "?";
}
}  // namespace

void Flags::add_string(const std::string& name, std::string default_value,
                       std::string help) {
  entries_[name] = Entry{Type::String, default_value, std::move(default_value),
                         std::move(help), false};
  order_.push_back(name);
}

void Flags::add_int(const std::string& name, std::int64_t default_value,
                    std::string help) {
  const std::string v = std::to_string(default_value);
  entries_[name] = Entry{Type::Int, v, v, std::move(help), false};
  order_.push_back(name);
}

void Flags::add_double(const std::string& name, double default_value, std::string help) {
  std::ostringstream os;
  os << default_value;
  entries_[name] = Entry{Type::Double, os.str(), os.str(), std::move(help), false};
  order_.push_back(name);
}

void Flags::add_bool(const std::string& name, bool default_value, std::string help) {
  const std::string v = default_value ? "true" : "false";
  entries_[name] = Entry{Type::Bool, v, v, std::move(help), false};
  order_.push_back(name);
}

bool Flags::assign(const std::string& name, const std::string& value) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    error_ = "unknown flag --" + name;
    return false;
  }
  Entry& e = it->second;
  switch (e.type) {
    case Type::Int: {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        error_ = "flag --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::Double: {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        error_ = "flag --" + name + " expects a number, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::Bool:
      if (value != "true" && value != "false") {
        error_ = "flag --" + name + " expects true/false, got '" + value + "'";
        return false;
      }
      break;
    case Type::String:
      break;
  }
  e.value = value;
  e.provided = true;
  return true;
}

bool Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);

    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      if (!assign(arg.substr(0, eq), arg.substr(eq + 1))) return false;
      continue;
    }

    // Boolean shorthand: --flag / --no-flag.
    const bool negated = arg.rfind("no-", 0) == 0;
    const std::string bare = negated ? arg.substr(3) : arg;
    const auto it = entries_.find(bare);
    if (it != entries_.end() && it->second.type == Type::Bool) {
      it->second.value = negated ? "false" : "true";
      it->second.provided = true;
      continue;
    }
    if (negated) {
      error_ = "unknown flag --" + arg;
      return false;
    }

    // `--name value` form.
    if (it == entries_.end()) {
      error_ = "unknown flag --" + arg;
      return false;
    }
    if (i + 1 >= argc) {
      error_ = "flag --" + arg + " is missing a value";
      return false;
    }
    if (!assign(arg, argv[++i])) return false;
  }
  return true;
}

const Flags::Entry& Flags::entry_of(const std::string& name, Type expected) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) throw std::logic_error("Flags: unregistered flag " + name);
  if (it->second.type != expected) {
    throw std::logic_error("Flags: flag " + name + " is not a " +
                           type_name(static_cast<int>(expected)));
  }
  return it->second;
}

const std::string& Flags::get_string(const std::string& name) const {
  return entry_of(name, Type::String).value;
}

std::int64_t Flags::get_int(const std::string& name) const {
  return std::strtoll(entry_of(name, Type::Int).value.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name) const {
  return std::strtod(entry_of(name, Type::Double).value.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name) const {
  return entry_of(name, Type::Bool).value == "true";
}

bool Flags::provided(const std::string& name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.provided;
}

std::optional<int> parse_positive_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return std::nullopt;  // junk / trailing
  if (errno == ERANGE) return std::nullopt;                   // out of long range
  if (v < 1 || v > std::numeric_limits<int>::max()) return std::nullopt;
  return static_cast<int>(v);
}

void add_jobs_flag(Flags& flags) {
  flags.add_int("jobs", 0,
                "worker threads for multi-seed runs "
                "(0 = BICORD_JOBS env, else all hardware threads)");
}

std::string Flags::usage(const std::string& program_name) const {
  std::ostringstream os;
  if (!description_.empty()) os << description_ << "\n\n";
  os << "usage: " << program_name << " [flags]\n\nflags:\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    os << "  --" << name;
    os << " (" << type_name(static_cast<int>(e.type)) << ", default "
       << (e.default_value.empty() ? "\"\"" : e.default_value) << ")\n";
    os << "      " << e.help << "\n";
  }
  return os.str();
}

}  // namespace bicord
