#pragma once
// Streaming and batch statistics used by the metrics layer and benches.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bicord {

/// Numerically stable streaming mean/variance (Welford) with min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container supporting exact quantiles; O(n log n) on first query
/// after new insertions.
class Samples {
 public:
  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolation quantile, q in [0, 1]. Throws if empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp to the
/// first/last bin. Useful for delay distributions in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count_in_bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  /// Multi-line ASCII rendering (one row per non-empty bin).
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Mean of a vector; 0 for empty input.
[[nodiscard]] double mean_of(const std::vector<double>& v);

}  // namespace bicord
