#pragma once
// Minimal command-line flag parser for the library's executables.
//
// Supports `--name value`, `--name=value`, and boolean `--name` /
// `--no-name`. Flags are registered with defaults and a help line;
// `parse()` validates everything and produces a formatted usage text.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bicord {

class Flags {
 public:
  explicit Flags(std::string program_description = {});

  /// Registers a flag; `name` without the leading dashes.
  void add_string(const std::string& name, std::string default_value,
                  std::string help);
  void add_int(const std::string& name, std::int64_t default_value, std::string help);
  void add_double(const std::string& name, double default_value, std::string help);
  void add_bool(const std::string& name, bool default_value, std::string help);

  /// Parses argv. Returns false (and fills error()) on unknown flags, type
  /// mismatches, or missing values. `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  /// True if the user supplied the flag explicitly (vs default).
  [[nodiscard]] bool provided(const std::string& name) const;

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::string usage(const std::string& program_name) const;
  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Type { String, Int, Double, Bool };
  struct Entry {
    Type type;
    std::string value;
    std::string default_value;
    std::string help;
    bool provided = false;
  };

  [[nodiscard]] const Entry& entry_of(const std::string& name, Type expected) const;
  bool assign(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
  std::string error_;
};

/// Strict base-10 parse of a whole string as a positive int. Returns
/// nullopt on empty input, sign-only/garbage/trailing characters,
/// non-positive values, and overflow — callers can then fail loudly
/// instead of silently running with a default.
[[nodiscard]] std::optional<int> parse_positive_int(const std::string& s);

/// Registers the shared `--jobs` flag every parallel executable exposes
/// (0 = auto: the BICORD_JOBS environment variable, else all hardware
/// threads). Resolution happens in runner::resolve_jobs.
void add_jobs_flag(Flags& flags);

}  // namespace bicord
