// Fig. 7 (paper Sec. VIII-C): the adaptive white-space allocation process.
// A ZigBee node sends bursts of 10 x 50-byte packets every 200 ms; the Wi-Fi
// device learns with 30 ms steps. The paper's anchor: after ~5 iterations
// the white space converges to ~70 ms, covering the 62.7 ms burst.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

int main(int argc, char** argv) {
  // Fig. 7 traces a single learning episode (one scenario, one seed), so
  // --jobs is accepted for CLI uniformity but there is nothing to fan out.
  const BenchArgs args = parse_args(argc, argv, 6);
  const int seconds = args.scale;
  const std::uint64_t seed = 77;
  print_header("bench_fig7_learning_convergence",
               "Fig. 7 (white-space length per iteration, learning phase)", seed);

  // The whole setup (10 x 50 B periodic bursts, 30 ms learning step) is the
  // fig7 preset; `bicordsim --scenario fig7` runs the same episode.
  coex::Scenario scenario(coex::ScenarioSpec::preset("fig7")->must_config());
  std::vector<std::pair<double, Duration>> grants;  // (time ms, grant)
  scenario.bicord_wifi()->set_grant_observer([&](TimePoint t, Duration grant) {
    grants.emplace_back(t.ms(), grant);
  });
  scenario.run_for(Duration::from_sec(seconds));

  std::printf("white-space length per iteration (first 16 grants):\n\n");
  std::vector<std::pair<std::string, double>> bars;
  for (std::size_t i = 0; i < grants.size() && i < 16; ++i) {
    char label[32];
    std::snprintf(label, sizeof(label), "iter %2zu", i + 1);
    bars.emplace_back(label, grants[i].second.ms());
  }
  std::printf("%s\n", bar_chart(bars, 40, "ms").c_str());

  const auto& alloc = scenario.bicord_wifi()->allocator();
  const double burst_ms =
      10 * 6.27;  // paper's 62.7 ms burst duration for 10 packets
  std::printf("converged: %s after %d iterations\n",
              alloc.converged() ? "yes" : "no", alloc.iterations_to_converge());
  std::printf("final white space: %.0f ms for a ~%.1f ms burst\n",
              alloc.estimate().ms(), burst_ms);
  std::printf("paper anchor: converges after ~5 iterations to ~70 ms for a 62.7 ms burst\n");
  return 0;
}
