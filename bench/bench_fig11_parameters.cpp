// Fig. 11 (paper Sec. VIII-E): impact of BiCord's parameters on channel
// utilization and per-packet delay — (a) packet length, (b) packets per
// burst, (c) ZigBee sender location, (d) delay vs burst size and location.
// Paper anchors: ZigBee's share grows with burst duration while total
// utilization stays around 80 %; utilization tracks signaling quality across
// locations; delay < 80 ms, ~30 ms for small bursts.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
struct Row {
  coex::UtilizationReport util;
  double delay_ms = 0.0;
};

Row run_one(std::uint64_t seed, coex::ZigbeeLocation loc, int packets,
            std::uint32_t payload) {
  coex::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.coordination = coex::Coordination::BiCord;
  cfg.location = loc;
  cfg.burst.packets_per_burst = packets;
  cfg.burst.payload_bytes = payload;
  cfg.burst.mean_interval = 200_ms;
  coex::Scenario scenario(cfg);
  warm_and_measure(scenario, 1_sec, 12_sec);
  Row r;
  r.util = scenario.utilization();
  const auto& stats = scenario.zigbee_stats();
  r.delay_ms = stats.delay_ms.empty() ? 0.0 : stats.delay_ms.mean();
  return r;
}

void add(AsciiTable& t, const std::string& label, const Row& r) {
  t.add_row({label, AsciiTable::percent(r.util.total), AsciiTable::percent(r.util.wifi),
             AsciiTable::percent(r.util.zigbee), AsciiTable::cell(r.delay_ms, 1)});
}
}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = 1111 + static_cast<std::uint64_t>(arg_or(argc, argv, 0));
  print_header("bench_fig11_parameters", "Fig. 11(a-d) — parameter impact", seed);

  const std::vector<std::string> header{"setting", "total util", "wifi util",
                                        "zigbee util", "mean delay (ms)"};

  AsciiTable a("Fig. 11(a): packet length (bursts of 5, location A)");
  a.set_header(header);
  for (std::uint32_t payload : {25u, 50u, 75u, 100u}) {
    add(a, std::to_string(payload) + "B", run_one(seed, coex::ZigbeeLocation::A, 5, payload));
  }
  std::printf("%s\n", a.render().c_str());

  AsciiTable b("Fig. 11(b)+(d): packets per burst (50 B, location A)");
  b.set_header(header);
  for (int packets : {3, 5, 8, 12}) {
    add(b, std::to_string(packets) + " pkts",
        run_one(seed + 13, coex::ZigbeeLocation::A, packets, 50));
  }
  std::printf("%s\n", b.render().c_str());

  AsciiTable c("Fig. 11(c)+(d): ZigBee sender location (5 x 50 B)");
  c.set_header(header);
  for (auto loc : {coex::ZigbeeLocation::A, coex::ZigbeeLocation::B,
                   coex::ZigbeeLocation::C, coex::ZigbeeLocation::D}) {
    add(c, coex::to_string(loc), run_one(seed + 29, loc, 5, 50));
  }
  std::printf("%s\n", c.render().c_str());

  std::printf("paper anchors: ZigBee share grows with burst duration, total ~80%%;\n"
              "ZigBee allocation highest at locations with best signaling (A, C);\n"
              "delay grows with burst size, < 80 ms overall.\n");
  return 0;
}
