// Fig. 11 (paper Sec. VIII-E): impact of BiCord's parameters on channel
// utilization and per-packet delay — (a) packet length, (b) packets per
// burst, (c) ZigBee sender location, (d) delay vs burst size and location.
// Paper anchors: ZigBee's share grows with burst duration while total
// utilization stays around 80 %; utilization tracks signaling quality across
// locations; delay < 80 ms, ~30 ms for small bursts.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
struct Row {
  coex::UtilizationReport util;
  double delay_ms = 0.0;
};

Row run_one(std::uint64_t seed, coex::ZigbeeLocation loc, int packets,
            std::uint32_t payload) {
  auto spec = *coex::ScenarioSpec::preset("fig11");
  spec.set("seed", seed);
  spec.set("location", coex::to_string(loc));
  spec.set("burst.packets", packets);
  spec.set("burst.payload", static_cast<std::int64_t>(payload));
  coex::Scenario scenario(spec.must_config());
  warm_and_measure(scenario, 1_sec, 12_sec);
  Row r;
  r.util = scenario.utilization();
  const auto& stats = scenario.zigbee_stats();
  r.delay_ms = stats.delay_ms.empty() ? 0.0 : stats.delay_ms.mean();
  return r;
}

void add(AsciiTable& t, const std::string& label, const Row& r) {
  t.add_row({label, AsciiTable::percent(r.util.total), AsciiTable::percent(r.util.wifi),
             AsciiTable::percent(r.util.zigbee), AsciiTable::cell(r.delay_ms, 1)});
}
}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv, 0);  // scale shifts the seed
  const std::uint64_t seed = 1111 + static_cast<std::uint64_t>(args.scale);
  print_header("bench_fig11_parameters", "Fig. 11(a-d) — parameter impact", seed);

  // All 12 cells of the three sub-figures as one trial list (cell order ==
  // table order, so --jobs never changes the output).
  struct Cell {
    std::string label;
    std::uint64_t seed;
    coex::ZigbeeLocation loc;
    int packets;
    std::uint32_t payload;
  };
  std::vector<Cell> cells;
  for (std::uint32_t payload : {25u, 50u, 75u, 100u}) {
    cells.push_back({std::to_string(payload) + "B", seed, coex::ZigbeeLocation::A, 5,
                     payload});
  }
  for (int packets : {3, 5, 8, 12}) {
    cells.push_back({std::to_string(packets) + " pkts", seed + 13,
                     coex::ZigbeeLocation::A, packets, 50});
  }
  for (auto loc : {coex::ZigbeeLocation::A, coex::ZigbeeLocation::B,
                   coex::ZigbeeLocation::C, coex::ZigbeeLocation::D}) {
    cells.push_back({coex::to_string(loc), seed + 29, loc, 5, 50});
  }
  const std::vector<Row> rows = sweep<Row>(
      "fig11 sweep", cells.size(), args.jobs, [&](std::size_t t) {
        const Cell& cell = cells[t];
        return run_one(cell.seed, cell.loc, cell.packets, cell.payload);
      });

  const std::vector<std::string> header{"setting", "total util", "wifi util",
                                        "zigbee util", "mean delay (ms)"};
  std::size_t next = 0;

  AsciiTable a("Fig. 11(a): packet length (bursts of 5, location A)");
  a.set_header(header);
  for (int i = 0; i < 4; ++i, ++next) add(a, cells[next].label, rows[next]);
  std::printf("%s\n", a.render().c_str());

  AsciiTable b("Fig. 11(b)+(d): packets per burst (50 B, location A)");
  b.set_header(header);
  for (int i = 0; i < 4; ++i, ++next) add(b, cells[next].label, rows[next]);
  std::printf("%s\n", b.render().c_str());

  AsciiTable c("Fig. 11(c)+(d): ZigBee sender location (5 x 50 B)");
  c.set_header(header);
  for (int i = 0; i < 4; ++i, ++next) add(c, cells[next].label, rows[next]);
  std::printf("%s\n", c.render().c_str());

  std::printf("paper anchors: ZigBee share grows with burst duration, total ~80%%;\n"
              "ZigBee allocation highest at locations with best signaling (A, C);\n"
              "delay grows with burst size, < 80 ms overall.\n");
  return 0;
}
