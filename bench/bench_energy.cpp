// Sec. VII-B: energy cost of BiCord on ZigBee nodes.
//
// A ZigBee node sends bursts of ten 120-byte packets. We compare the radio
// energy (TX + RX; a duty-cycled mote sleeps otherwise) per *delivered*
// packet in three regimes:
//   1. clear channel, plain CSMA           — the baseline;
//   2. BiCord under strong Wi-Fi traffic   — adds CTI sampling + control
//      packets; paper anchor: +10..21 % over the clear channel;
//   3. plain CSMA under the same Wi-Fi     — retransmissions and losses;
//      paper anchor: costlier than BiCord once >2 retransmissions happen.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
struct EnergyRow {
  double active_mj = 0.0;   ///< TX + RX energy over the window
  double total_mj = 0.0;    ///< including idle-listen / sleep
  std::uint64_t delivered = 0;
  std::uint64_t generated = 0;

  [[nodiscard]] double mj_per_delivered() const {
    return delivered ? active_mj / static_cast<double>(delivered) : 0.0;
  }
};

EnergyRow run_one(std::uint64_t seed, coex::Coordination scheme, bool wifi_active,
                  bool duty_cycle = false) {
  auto spec = *coex::ScenarioSpec::preset("default");
  spec.set("seed", seed);
  spec.set("coordination", coex::to_string(scheme));
  spec.set("burst.packets", 10);
  spec.set("burst.payload", 120);
  spec.set("burst.interval", 300_ms);
  spec.set("zigbee.duty_cycle", duty_cycle);
  if (!wifi_active) {
    // Idle Wi-Fi: one tiny frame every 2 s keeps the link nominally alive.
    spec.set("wifi.traffic", "cbr");
    spec.set("wifi.cbr_interval", 2_sec);
  }
  coex::Scenario scenario(spec.must_config());
  scenario.run_for(1_sec);
  scenario.energy_meter().reset();
  const auto delivered_before = scenario.zigbee_stats().delivered;
  const auto generated_before = scenario.zigbee_stats().generated;
  scenario.run_for(20_sec);
  EnergyRow row;
  row.active_mj = scenario.energy_meter().tx_mj() + scenario.energy_meter().rx_mj();
  row.total_mj = scenario.energy_meter().total_mj();
  row.delivered = scenario.zigbee_stats().delivered - delivered_before;
  row.generated = scenario.zigbee_stats().generated - generated_before;
  return row;
}
}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv, 0);  // scale shifts the seed
  const std::uint64_t seed = 1515 + static_cast<std::uint64_t>(args.scale);
  print_header("bench_energy", "Sec. VII-B (energy cost of BiCord)", seed);

  // The four regimes are independent runs; fan them out over the workers.
  struct Regime {
    std::uint64_t seed;
    coex::Coordination scheme;
    bool wifi_active;
    bool duty_cycle;
  };
  const Regime regimes[] = {
      {seed, coex::Coordination::Csma, false, false},
      {seed + 1, coex::Coordination::BiCord, true, false},
      {seed + 2, coex::Coordination::Csma, true, false},
      {seed + 1, coex::Coordination::BiCord, true, true}};
  const std::vector<EnergyRow> rows = sweep<EnergyRow>(
      "energy sweep", std::size(regimes), args.jobs, [&](std::size_t t) {
        const Regime& regime = regimes[t];
        return run_one(regime.seed, regime.scheme, regime.wifi_active,
                       regime.duty_cycle);
      });
  const EnergyRow& clear = rows[0];
  const EnergyRow& bicord = rows[1];
  const EnergyRow& csma = rows[2];
  const EnergyRow& bicord_dc = rows[3];

  AsciiTable table;
  table.set_header({"regime", "active mJ (tx+rx)", "total mJ", "delivered", "generated",
                    "mJ / delivered pkt", "vs clear"});
  auto add = [&](const char* name, const EnergyRow& r) {
    const double ratio = clear.mj_per_delivered() > 0.0 && r.delivered > 0
                             ? r.mj_per_delivered() / clear.mj_per_delivered() - 1.0
                             : 0.0;
    table.add_row({name, AsciiTable::cell(r.active_mj, 2),
                   AsciiTable::cell(r.total_mj, 2),
                   AsciiTable::cell(static_cast<std::int64_t>(r.delivered)),
                   AsciiTable::cell(static_cast<std::int64_t>(r.generated)),
                   AsciiTable::cell(r.mj_per_delivered(), 4),
                   r.delivered ? AsciiTable::percent(ratio) : std::string("n/a")});
  };
  add("clear channel (CSMA)", clear);
  add("BiCord under Wi-Fi", bicord);
  add("BiCord + duty cycling", bicord_dc);
  add("CSMA under Wi-Fi", csma);
  std::printf("%s\n", table.render().c_str());
  std::printf("paper anchors: BiCord costs +10..21%% over the clear channel for\n"
              "10 x 120 B bursts; uncoordinated CSMA under interference wastes far\n"
              "more energy per delivered packet (retransmissions, losses) while an\n"
              "always-listening radio burns idle current BiCord's duty-cycled node\n"
              "avoids (compare the total-mJ column).\n");
  return 0;
}
