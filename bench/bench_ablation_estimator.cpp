// Ablation (DESIGN.md Sec. 5): the conservative estimation margin.
// BiCord subtracts 2*T_c per learning round (T_est = (T_w - 2 T_c) * N) to
// avoid over-provisioning. This bench sweeps the subtracted margin {0, T_c,
// 2 T_c} and reports the converged white space, its over-provision against
// the true requirement, and the supplemental-round rate.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

int main(int argc, char** argv) {
  const std::uint64_t seed = 1717 + static_cast<std::uint64_t>(arg_or(argc, argv, 0));
  print_header("bench_ablation_estimator",
               "ablation — conservative estimation margin (Sec. VI, Eq. 1)", seed);

  AsciiTable table;
  table.set_header({"margin", "converged ws (ms)", "over-provision", "grants",
                    "supplement rate", "zb mean delay (ms)"});

  // The allocator's credit is W0 - 2*control_duration; sweeping
  // control_duration over {0, 2.5, 5} ms realises margins {0, Tc, 2Tc} for
  // this substrate's Tc ~ 5 ms.
  const std::pair<const char*, Duration> margins[] = {
      {"0 (aggressive)", 0_ms},
      {"T_c", Duration::from_us(2500)},
      {"2 T_c (paper)", Duration::from_ms(5)},
  };

  const double need_ms = 4.0 + 5.7 * 5;  // 5-packet burst requirement
  for (const auto& [name, half_margin] : margins) {
    // The default preset is the paper workload (BiCord at A, 5 x 50 B bursts
    // every 200 ms); this ablation only pins the arrivals and sweeps the margin.
    auto spec = *coex::ScenarioSpec::preset("default");
    spec.set("seed", seed);
    spec.set("burst.poisson", false);
    spec.set("allocator.control_duration", half_margin);
    const auto cfg = spec.must_config();
    coex::Scenario scenario(cfg);
    scenario.run_for(15_sec);

    const auto* wifi = scenario.bicord_wifi();
    const auto& history = wifi->grant_history();
    std::uint64_t supplements = 0;
    for (auto g : history) {
      if (g == cfg.allocator.initial_whitespace &&
          wifi->allocator().phase() == core::AllocatorPhase::Adjusted) {
        ++supplements;
      }
    }
    const double ws = wifi->allocator().estimate().ms();
    const auto& delays = scenario.zigbee_stats().delay_ms;
    table.add_row({name, AsciiTable::cell(ws, 1),
                   AsciiTable::percent(ws / need_ms - 1.0),
                   AsciiTable::cell(static_cast<std::int64_t>(history.size())),
                   AsciiTable::percent(history.empty()
                                           ? 0.0
                                           : static_cast<double>(supplements) /
                                                 static_cast<double>(history.size())),
                   AsciiTable::cell(delays.empty() ? 0.0 : delays.mean(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: no margin -> over-provisioned white spaces (wasted air);\n"
              "the paper's 2*T_c margin converges from below, trading a few\n"
              "supplemental rounds for a tight steady-state reservation.\n");
  return 0;
}
