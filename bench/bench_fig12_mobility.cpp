// Fig. 12 (paper Sec. VIII-F): BiCord in mobile scenarios — a person walking
// near the Wi-Fi receiver (CSI disturbance -> false positives) and a moving
// ZigBee sender (extra corruption -> retransmissions). Paper anchors:
// utilization at most ~9 % below static; person mobility slightly lowers
// ZigBee delay (white spaces may pre-date transmissions), device mobility
// raises it slightly (~3 ms).

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
struct Row {
  coex::UtilizationReport util;
  double delay_ms = 0.0;
  double delivery = 0.0;
};

Row run_one(std::uint64_t seed, bool person, bool device, Duration interval) {
  auto spec = *coex::ScenarioSpec::preset("fig12");
  spec.set("seed", seed);
  spec.set("burst.interval", interval);
  spec.set("mobility.person", person);
  spec.set("mobility.device", device);
  coex::Scenario scenario(spec.must_config());
  warm_and_measure(scenario, 1_sec, 15_sec);
  Row r;
  r.util = scenario.utilization();
  const auto& stats = scenario.zigbee_stats();
  r.delay_ms = stats.delay_ms.empty() ? 0.0 : stats.delay_ms.mean();
  r.delivery = stats.delivery_ratio();
  return r;
}
}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv, 0);  // scale shifts the seed
  const std::uint64_t seed = 1212 + static_cast<std::uint64_t>(args.scale);
  print_header("bench_fig12_mobility", "Fig. 12 — mobile scenarios", seed);

  // (interval, mobility-variant) cells in table order.
  const std::pair<const char*, Duration> intervals[] = {{"200ms", 200_ms}, {"1s", 1_sec}};
  struct Cell {
    std::uint64_t seed;
    bool person;
    bool device;
    Duration interval;
  };
  std::vector<Cell> cells;
  for (const auto& [iname, interval] : intervals) {
    cells.push_back({seed, false, false, interval});
    cells.push_back({seed + 3, true, false, interval});
    cells.push_back({seed + 5, false, true, interval});
  }
  const std::vector<Row> rows = sweep<Row>(
      "fig12 sweep", cells.size(), args.jobs, [&](std::size_t t) {
        const Cell& cell = cells[t];
        return run_one(cell.seed, cell.person, cell.device, cell.interval);
      });

  AsciiTable table;
  table.set_header({"scenario", "burst interval", "total util", "zb delay (ms)",
                    "zb delivery"});
  std::size_t next = 0;
  for (const auto& [iname, interval] : intervals) {
    const Row& stat = rows[next++];
    const Row& person = rows[next++];
    const Row& device = rows[next++];
    table.add_row({"static", iname, AsciiTable::percent(stat.util.total),
                   AsciiTable::cell(stat.delay_ms, 1), AsciiTable::percent(stat.delivery)});
    table.add_row({"person mobility", iname, AsciiTable::percent(person.util.total),
                   AsciiTable::cell(person.delay_ms, 1),
                   AsciiTable::percent(person.delivery)});
    table.add_row({"device mobility", iname, AsciiTable::percent(device.util.total),
                   AsciiTable::cell(device.delay_ms, 1),
                   AsciiTable::percent(device.delivery)});
    if (iname != std::string("1s")) table.add_separator();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper anchors: utilization <= ~9%% below static; person mobility can\n"
              "lower ZigBee delay (pre-emptive white spaces from CSI false positives);\n"
              "device mobility adds ~3 ms of delay and ~4.6%% utilization loss.\n");
  return 0;
}
