// Fig. 8 (paper Sec. VIII-C): iterations needed to adjust the white space,
// for bursts of 5/10/15 packets, steps of 30/40 ms, at locations A and B.
// Paper anchors: always below ~8 on average; more packets or a shorter step
// means more iterations; location A is slightly worse because leftover
// ZigBee data packets are interpreted as channel requests.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
double measure_iterations(std::uint64_t seed, coex::ZigbeeLocation loc, int packets,
                          Duration step) {
  auto spec = *coex::ScenarioSpec::preset("fig8");
  spec.set("seed", seed);
  spec.set("location", coex::to_string(loc));
  spec.set("burst.packets", packets);
  spec.set("allocator.initial_whitespace", step);

  coex::Scenario scenario(spec.must_config());
  // Run until converged (or give up after 12 s of simulated time).
  for (int i = 0; i < 60; ++i) {
    scenario.run_for(200_ms);
    if (scenario.bicord_wifi()->allocator().converged()) break;
  }
  const auto& alloc = scenario.bicord_wifi()->allocator();
  return alloc.converged() ? alloc.iterations_to_converge() : 60.0;
}
}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv, 10);  // paper: 30
  const int reps = args.scale;
  const std::uint64_t seed = 88;
  print_header("bench_fig8_iterations",
               "Fig. 8 (iterations to adjust the white space)", seed);
  std::printf("repetitions per cell: %d (paper used 30)\n\n", reps);

  // Flatten every (location, packets, rep, step) run into one trial list;
  // per-cell stats below are accumulated in rep order, so the table is
  // bitwise identical for any --jobs value.
  struct Trial {
    coex::ZigbeeLocation loc;
    int packets;
    Duration step;
    std::uint64_t seed;
  };
  std::vector<Trial> trials;
  for (auto loc : {coex::ZigbeeLocation::A, coex::ZigbeeLocation::B}) {
    for (int packets : {5, 10, 15}) {
      for (int rep = 0; rep < reps; ++rep) {
        const std::uint64_t rep_seed = seed + static_cast<std::uint64_t>(rep) * 1000;
        trials.push_back({loc, packets, 30_ms, rep_seed});
        trials.push_back({loc, packets, 40_ms, rep_seed + 7});
      }
    }
  }
  const std::vector<double> iterations = sweep<double>(
      "fig8 sweep", trials.size(), args.jobs, [&](std::size_t t) {
        const Trial& trial = trials[t];
        return measure_iterations(trial.seed, trial.loc, trial.packets, trial.step);
      });

  AsciiTable table;
  table.set_header({"location", "packets/burst", "step 30ms", "step 40ms"});
  std::size_t next = 0;
  for (auto loc : {coex::ZigbeeLocation::A, coex::ZigbeeLocation::B}) {
    for (int packets : {5, 10, 15}) {
      RunningStats s30;
      RunningStats s40;
      for (int rep = 0; rep < reps; ++rep) {
        s30.add(iterations[next++]);
        s40.add(iterations[next++]);
      }
      table.add_row({coex::to_string(loc), AsciiTable::cell(std::int64_t{packets}),
                     AsciiTable::cell(s30.mean(), 1) + " +/- " +
                         AsciiTable::cell(s30.stddev(), 1),
                     AsciiTable::cell(s40.mean(), 1) + " +/- " +
                         AsciiTable::cell(s40.stddev(), 1)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper anchors: mean always < ~8; more packets -> more iterations;\n"
              "shorter step -> more iterations; location A slightly worse.\n");
  return 0;
}
