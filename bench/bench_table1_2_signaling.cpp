// Tables I & II (paper Sec. VIII-B): precision and recall of cross-technology
// signaling at locations A-D for signaling powers {0, -1, -3} dBm and
// {3, 4, 5} control packets per request.
//
// Setup mirrors the paper: Wi-Fi CBR of 100-byte frames every 1 ms on the
// E -> F link; the ZigBee sender emits trials of raw 120-byte control
// packets separated by 16 ms of silence; the Wi-Fi receiver's CSI detector
// (threshold + N=2-in-5ms continuity) produces the positives.

#include "bench_common.hpp"
#include "coex/signaling_experiment.hpp"

using namespace bicord;
using namespace bicord::bench;

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv, 300);  // paper: 600
  const int trials = args.scale;
  const std::uint64_t seed = 20210705;
  print_header("bench_table1_2_signaling", "Tables I and II", seed);
  std::printf("trials per cell: %d (pass an argument to change; paper used 600)\n\n",
              trials);

  const double powers[] = {0.0, -1.0, -3.0};
  const int packet_counts[] = {3, 4, 5};
  const coex::ZigbeeLocation locations[] = {
      coex::ZigbeeLocation::A, coex::ZigbeeLocation::B, coex::ZigbeeLocation::C,
      coex::ZigbeeLocation::D};

  AsciiTable precision("TABLE I: precision of cross-technology signaling");
  AsciiTable recall("TABLE II: recall of cross-technology signaling");
  std::vector<std::string> header{"Location"};
  for (double p : powers) {
    for (int k : packet_counts) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+.0fdBm/%dpkt", p, k);
      header.emplace_back(buf);
    }
  }
  precision.set_header(header);
  recall.set_header(header);

  // 36 experiment cells (location x power x packet count) fan out across
  // the workers; rows are assembled in cell order afterwards.
  std::vector<coex::SignalingExperimentConfig> cells;
  for (auto loc : locations) {
    for (double p : powers) {
      for (int k : packet_counts) {
        coex::SignalingExperimentConfig cfg;
        cfg.seed = seed ^ static_cast<std::uint64_t>(k * 131 + static_cast<int>(p * 7));
        cfg.location = loc;
        cfg.power_dbm = p;
        cfg.control_packets = k;
        cfg.trials = trials;
        cells.push_back(cfg);
      }
    }
  }
  const std::vector<coex::SignalingResult> results =
      sweep<coex::SignalingResult>("tables sweep", cells.size(), args.jobs,
                                   [&](std::size_t t) {
                                     return coex::run_signaling_experiment(cells[t]);
                                   });

  double min_wifi_impact = 1.0;
  double max_wifi_impact = 0.0;
  const std::size_t cells_per_location = std::size(powers) * std::size(packet_counts);
  std::size_t next = 0;
  for (auto loc : locations) {
    std::vector<std::string> prow{coex::to_string(loc)};
    std::vector<std::string> rrow{coex::to_string(loc)};
    for (std::size_t c = 0; c < cells_per_location; ++c) {
      const auto& r = results[next++];
      prow.push_back(AsciiTable::cell(r.precision(), 4));
      rrow.push_back(AsciiTable::cell(r.recall(), 4));
      const double impact = r.wifi_prr_baseline - r.wifi_prr;
      min_wifi_impact = std::min(min_wifi_impact, impact);
      max_wifi_impact = std::max(max_wifi_impact, impact);
    }
    precision.add_row(prow);
    recall.add_row(rrow);
  }
  std::printf("%s\n%s\n", precision.render().c_str(), recall.render().c_str());

  std::printf("Paper anchors: A/0dBm/4pkt precision 0.9355 recall 0.9355; recall\n"
              "rises with packet count; C peaks at -1 dBm; D needs -3 dBm.\n");
  std::printf("Wi-Fi PRR impact of signaling: %.1f%% .. %.1f%% (paper: 1-6%%)\n",
              min_wifi_impact * 100.0, max_wifi_impact * 100.0);
  return 0;
}
