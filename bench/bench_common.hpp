#pragma once
// Shared helpers for the reproduction benches.
//
// Every bench accepts an optional positional argument scaling the workload
// (trials / packets / repetitions) so `for b in build/bench/*; do $b; done`
// finishes quickly while full paper-scale runs remain one flag away, plus
// the shared `--jobs N` flag selecting how many worker threads multi-seed
// sweeps fan out over (0 = BICORD_JOBS env, else all hardware threads).
// Thread count never changes the reported numbers: trials are merged in
// seed order (see runner/parallel_runner.hpp). Set BICORD_PROGRESS=1 for a
// live per-trial ticker on stderr during long sweeps.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "coex/scenario.hpp"
#include "coex/scenario_spec.hpp"
#include "runner/parallel_runner.hpp"
#include "runner/trial_pool.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace bicord::bench {

/// Parses argv[1] as a positive integer scale knob, else `fallback`.
/// Garbage fails loudly (exit 2) instead of silently running the default.
inline int arg_or(int argc, char** argv, int fallback) {
  if (argc > 1) {
    const auto v = parse_positive_int(argv[1]);
    if (!v) {
      std::fprintf(stderr,
                   "error: expected a positive integer scale argument, got '%s'\n",
                   argv[1]);
      std::exit(2);
    }
    return *v;
  }
  return fallback;
}

/// Parsed CLI of a parallel bench.
struct BenchArgs {
  int scale = 0;  ///< positional workload knob (or the bench's fallback)
  int jobs = 0;   ///< resolved worker count, always >= 1
};

/// Parses `[scale] [--jobs N]`; exits loudly on garbage or unknown flags.
inline BenchArgs parse_args(int argc, char** argv, int fallback_scale) {
  Flags flags(
      "bicord reproduction bench — optional positional argument scales the "
      "workload (trials / packets / repetitions)");
  add_jobs_flag(flags);
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n\n%s", flags.error().c_str(),
                 flags.usage(argv[0]).c_str());
    std::exit(2);
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage(argv[0]).c_str());
    std::exit(0);
  }
  BenchArgs args;
  args.scale = fallback_scale;
  if (!flags.positional().empty()) {
    const auto v = parse_positive_int(flags.positional().front());
    if (!v) {
      std::fprintf(stderr,
                   "error: expected a positive integer scale argument, got '%s'\n",
                   flags.positional().front().c_str());
      std::exit(2);
    }
    args.scale = *v;
  }
  args.jobs = runner::resolve_jobs(static_cast<int>(flags.get_int("jobs")));
  return args;
}

inline void print_header(const char* id, const char* paper_ref, std::uint64_t seed) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("seed: %llu\n", static_cast<unsigned long long>(seed));
  std::printf("==============================================================\n");
}

/// The warm-up/measure idiom, implemented once next to Scenario itself.
using coex::warm_and_measure;

/// Fans `trials` independent cells out over `jobs` workers and returns the
/// results in cell order (so downstream table assembly is deterministic).
/// Prints the sweep's throughput line and, with BICORD_PROGRESS=1, a live
/// per-trial counter on stderr.
template <typename R>
[[nodiscard]] std::vector<R> sweep(const char* label, std::size_t trials, int jobs,
                                   const std::function<R(std::size_t)>& fn) {
  const int effective =
      std::min(runner::resolve_jobs(jobs),
               static_cast<int>(std::max<std::size_t>(trials, 1)));
  const char* ticker_env = std::getenv("BICORD_PROGRESS");
  const bool ticker = ticker_env != nullptr && ticker_env[0] != '\0' &&
                      ticker_env[0] != '0';
  std::atomic<std::size_t> done{0};
  const auto start = std::chrono::steady_clock::now();
  auto out = runner::parallel_map<R>(trials, effective, [&](std::size_t i) {
    R r = fn(i);
    const std::size_t d = done.fetch_add(1) + 1;
    if (ticker) std::fprintf(stderr, "\r[%s] %zu/%zu trials", label, d, trials);
    return r;
  });
  if (ticker) std::fprintf(stderr, "\n");
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  std::printf("[%s] %zu trials in %.2f s (%.1f trials/s, jobs=%d)\n\n", label,
              trials, seconds,
              seconds > 0.0 ? static_cast<double>(trials) / seconds : 0.0,
              effective);
  return out;
}

}  // namespace bicord::bench
