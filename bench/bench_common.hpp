#pragma once
// Shared helpers for the reproduction benches.
//
// Every bench accepts an optional first argument scaling the workload
// (trials / packets / repetitions) so `for b in build/bench/*; do $b; done`
// finishes quickly while full paper-scale runs remain one flag away.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "coex/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace bicord::bench {

/// Parses argv[1] as a positive integer scale knob, else `fallback`.
inline int arg_or(int argc, char** argv, int fallback) {
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) return v;
  }
  return fallback;
}

inline void print_header(const char* id, const char* paper_ref, std::uint64_t seed) {
  std::printf("==============================================================\n");
  std::printf("%s\n", id);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("seed: %llu\n", static_cast<unsigned long long>(seed));
  std::printf("==============================================================\n");
}

/// Runs a scenario with warm-up and measurement windows; returns after
/// `measure` of measured time.
inline void warm_and_measure(coex::Scenario& scenario, Duration warmup,
                             Duration measure) {
  scenario.run_for(warmup);
  scenario.start_measurement();
  scenario.run_for(measure);
}

}  // namespace bicord::bench
