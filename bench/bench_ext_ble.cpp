// Extension experiment (paper Sec. VII-D): BiCord coordination between
// ZigBee and Bluetooth Low Energy networks.
//
// Several aggressive BLE connections hop across the 2.4 GHz band around a
// ZigBee link. Uncoordinated, every hop onto the ZigBee channel corrupts
// in-flight packets. With BiCord-for-BLE, a delivery failure triggers a
// control-packet request; the BLE masters' cross-decoding receivers lease
// the overlapping data channels out of their hopping maps (the spectral
// analogue of a white space), with the lease length learned by the same
// white-space allocator. We report ZigBee delivery/delay/retries and the
// BLE links' own packet success — coordination must not hurt BLE.

#include "bench_common.hpp"
#include "ble/ble_bicord.hpp"
#include "ble/ble_link.hpp"
#include "ble/ble_zigbee_agent.hpp"
#include "zigbee/traffic.hpp"
#include "zigbee/zigbee_mac.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
struct Result {
  double zb_delivery = 0.0;
  double zb_delay_ms = 0.0;
  double zb_attempt_overhead = 0.0;  ///< MAC attempts per delivered packet
  double ble_success = 0.0;
  std::uint64_t leases = 0;
  std::uint64_t controls = 0;
};

Result run(std::uint64_t seed, bool coordinate, int ble_links, Duration sim_time) {
  sim::Simulator sim(seed);
  phy::Medium medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1});

  std::vector<std::unique_ptr<ble::BleConnection>> links;
  for (int i = 0; i < ble_links; ++i) {
    const auto m = medium.add_node("ble-m", {0.4 * i, 0.2});
    const auto s = medium.add_node("ble-s", {0.4 * i, 1.4});
    ble::BleConnection::Config cfg;
    cfg.connection_interval = Duration::from_us(7500);
    cfg.payload_bytes = 251;  // max LE data PDU
    cfg.tx_power_dbm = 4.0;  // class-2-ish audio links
    cfg.hop_increment = 7 + 2 * (i % 5);
    links.push_back(std::make_unique<ble::BleConnection>(medium, m, s, cfg));
    links.back()->start();
  }

  const auto zb_tx = medium.add_node("zb-tx", {0.9, 0.7});  // inside the BLE cluster
  const auto zb_rx = medium.add_node("zb-rx", {2.3, 2.3});
  zigbee::ZigbeeMac::Config zc;
  zc.channel = 24;
  zc.retry_limit = 1;
  zigbee::ZigbeeMac sender(medium, zb_tx, zc);
  zigbee::ZigbeeMac receiver(medium, zb_rx, zc);

  std::vector<std::unique_ptr<ble::BleBiCordAgent>> agents;
  if (coordinate) {
    for (auto& l : links) {
      agents.push_back(
          std::make_unique<ble::BleBiCordAgent>(medium, *l, ble::BleBiCordAgent::Config{}));
    }
  }

  ble::BleAwareZigbeeAgent agent(sender, zb_rx, ble::BleAwareZigbeeAgent::Config{});
  zigbee::BurstSource::Config bcfg;
  bcfg.packets_per_burst = 5;
  bcfg.payload_bytes = 50;
  bcfg.mean_interval = 150_ms;
  zigbee::BurstSource source(sim, bcfg);
  source.set_burst_callback(
      [&](int n, std::uint32_t payload) { agent.submit_burst(n, payload); });
  source.start();

  sim.run_for(sim_time);

  Result r;
  const auto& stats = agent.stats();
  r.zb_delivery = stats.delivery_ratio();
  r.zb_delay_ms = stats.delay_ms.empty() ? 0.0 : stats.delay_ms.mean();
  // On-air data transmissions per delivered packet (MAC retries included).
  const auto data_frames = sender.radio().frames_sent() - agent.control_packets_sent();
  r.zb_attempt_overhead =
      stats.delivered ? static_cast<double>(data_frames) /
                            static_cast<double>(stats.delivered)
                      : 0.0;
  double ble_ok = 0.0;
  double ble_total = 0.0;
  for (auto& l : links) {
    ble_ok += static_cast<double>(l->stats().packets_ok);
    ble_total += static_cast<double>(l->stats().packets_ok + l->stats().packets_corrupted);
  }
  r.ble_success = ble_total > 0.0 ? ble_ok / ble_total : 0.0;
  for (auto& a : agents) r.leases += a->leases_granted();
  r.controls = agent.control_packets_sent();
  return r;
}
}  // namespace

int main(int argc, char** argv) {
  const int seconds = arg_or(argc, argv, 15);
  const std::uint64_t seed = 2626;
  print_header("bench_ext_ble",
               "extension — BiCord for ZigBee/BLE coexistence (Sec. VII-D)", seed);

  AsciiTable table;
  table.set_header({"configuration", "zb delivery", "zb delay (ms)",
                    "zb MAC attempts/pkt", "BLE pkt success", "leases", "controls"});
  for (int links : {4, 8, 16}) {
    for (bool coordinate : {false, true}) {
      const Result r = run(seed + static_cast<std::uint64_t>(links), coordinate, links,
                           Duration::from_sec(seconds));
      char name[64];
      std::snprintf(name, sizeof(name), "%d BLE links, %s", links,
                    coordinate ? "BiCord-BLE" : "uncoordinated");
      table.add_row({name, AsciiTable::percent(r.zb_delivery),
                     AsciiTable::cell(r.zb_delay_ms, 1),
                     AsciiTable::cell(r.zb_attempt_overhead, 2),
                     AsciiTable::percent(r.ble_success),
                     AsciiTable::cell(static_cast<std::int64_t>(r.leases)),
                     AsciiTable::cell(static_cast<std::int64_t>(r.controls))});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: BLE pressure on a 2 MHz ZigBee channel is inherently mild\n"
              "(one of 37 hop channels overlaps), so CSMA absorbs low densities —\n"
              "itself a finding. As density grows, coordination trims the retry\n"
              "overhead and delay tail at negligible cost to BLE throughput.\n");
  return 0;
}
