// Extension experiment (paper Sec. VII-D): BiCord coordination between
// ZigBee and Bluetooth Low Energy networks.
//
// Several aggressive BLE connections hop across the 2.4 GHz band around a
// ZigBee link. Uncoordinated, every hop onto the ZigBee channel corrupts
// in-flight packets. With BiCord-for-BLE, a delivery failure triggers a
// control-packet request; the BLE masters' cross-decoding receivers lease
// the overlapping data channels out of their hopping maps (the spectral
// analogue of a white space), with the lease length learned by the same
// white-space allocator. We report ZigBee delivery/delay/retries and the
// BLE links' own packet success — coordination must not hurt BLE.

#include "bench_common.hpp"
#include "coex/ble_scenario.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
coex::BleScenario::Report run(std::uint64_t seed, bool coordinate, int ble_links,
                              Duration sim_time) {
  auto spec = *coex::ScenarioSpec::preset("ble");
  spec.set("seed", seed);
  spec.set("ble.links", ble_links);
  spec.set("ble.coordinate", coordinate);
  coex::BleScenario scenario(spec.must_ble_config());
  scenario.run_for(sim_time);
  return scenario.report();
}
}  // namespace

int main(int argc, char** argv) {
  const int seconds = arg_or(argc, argv, 15);
  const std::uint64_t seed = 2626;
  print_header("bench_ext_ble",
               "extension — BiCord for ZigBee/BLE coexistence (Sec. VII-D)", seed);

  AsciiTable table;
  table.set_header({"configuration", "zb delivery", "zb delay (ms)",
                    "zb MAC attempts/pkt", "BLE pkt success", "leases", "controls"});
  for (int links : {4, 8, 16}) {
    for (bool coordinate : {false, true}) {
      const coex::BleScenario::Report r =
          run(seed + static_cast<std::uint64_t>(links), coordinate, links,
              Duration::from_sec(seconds));
      char name[64];
      std::snprintf(name, sizeof(name), "%d BLE links, %s", links,
                    coordinate ? "BiCord-BLE" : "uncoordinated");
      table.add_row({name, AsciiTable::percent(r.zb_delivery),
                     AsciiTable::cell(r.zb_delay_ms, 1),
                     AsciiTable::cell(r.zb_attempt_overhead, 2),
                     AsciiTable::percent(r.ble_success),
                     AsciiTable::cell(static_cast<std::int64_t>(r.leases)),
                     AsciiTable::cell(static_cast<std::int64_t>(r.controls))});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: BLE pressure on a 2 MHz ZigBee channel is inherently mild\n"
              "(one of 37 hop channels overlaps), so CSMA absorbs low densities —\n"
              "itself a finding. As density grows, coordination trims the retry\n"
              "overhead and delay tail at negligible cost to BLE throughput.\n");
  return 0;
}
