// Fig. 10 (paper Sec. VIII-D): BiCord vs ECC — channel utilization (a),
// ZigBee transmission delay (b), and ZigBee throughput (c), as a function of
// the mean interval between ZigBee bursts (101.56 ms .. 2 s).
//
// Workload per the paper: bursts of 5 x 50-byte packets, Poisson arrivals,
// every packet ACKed; ECC issues blind periodic white spaces (period 100 ms,
// lengths 20/30/40 ms). Paper anchors: BiCord utilization > 80 % at every
// interval and +50.6 % over ECC at the 2 s interval; BiCord delay well below
// ECC (-84.2 % on average); BiCord throughput >= ECC everywhere.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
struct Row {
  coex::UtilizationReport util;
  double delay_ms = 0.0;
  double goodput_kbps = 0.0;
  double delivery = 0.0;
};

Row run_one(std::uint64_t seed, coex::Coordination scheme, Duration interval,
            Duration ecc_whitespace, int target_packets) {
  auto spec = *coex::ScenarioSpec::preset("fig10");
  spec.set("seed", seed);
  spec.set("coordination", coex::to_string(scheme));
  spec.set("burst.interval", interval);
  spec.set("ecc.whitespace", ecc_whitespace);

  coex::Scenario scenario(spec.must_config());
  scenario.run_for(1_sec);
  scenario.start_measurement();
  // Run until the ZigBee sender has generated ~target_packets.
  const auto target = static_cast<std::uint64_t>(target_packets);
  while (scenario.zigbee_stats().generated < target) {
    scenario.run_for(1_sec);
  }
  Row row;
  row.util = scenario.utilization();
  const auto& stats = scenario.zigbee_stats();
  row.delay_ms = stats.delay_ms.empty() ? 0.0 : stats.delay_ms.mean();
  row.goodput_kbps = scenario.zigbee_goodput_kbps();
  row.delivery = stats.delivery_ratio();
  return row;
}
}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv, 250);  // paper: 1000
  const int packets = args.scale;
  const std::uint64_t seed = 1010;
  print_header("bench_fig10_comparison",
               "Fig. 10(a,b,c) — BiCord vs ECC-20/30/40", seed);
  std::printf("packets per run: %d (paper used 1000; pass an argument to change)\n\n",
              packets);

  // The paper's tick-based intervals.
  const std::pair<const char*, Duration> intervals[] = {
      {"101.56ms", Duration::from_us(101560)}, {"203.12ms", Duration::from_us(203120)},
      {"406.24ms", Duration::from_us(406240)}, {"1s", 1_sec}, {"2s", 2_sec}};

  struct SchemeSpec {
    const char* name;
    coex::Coordination coordination;
    Duration ecc_ws;
  };
  const SchemeSpec schemes[] = {{"BiCord", coex::Coordination::BiCord, 0_ms},
                                {"ECC-20ms", coex::Coordination::Ecc, 20_ms},
                                {"ECC-30ms", coex::Coordination::Ecc, 30_ms},
                                {"ECC-40ms", coex::Coordination::Ecc, 40_ms}};

  // One trial per (scheme, interval) cell; results land in cell order so the
  // tables below are identical for any --jobs value.
  const std::size_t n_intervals = std::size(intervals);
  const std::vector<Row> rows = sweep<Row>(
      "fig10 sweep", std::size(schemes) * n_intervals, args.jobs,
      [&](std::size_t t) {
        const auto& scheme = schemes[t / n_intervals];
        const std::size_t i = t % n_intervals;
        return run_one(seed + i * 17, scheme.coordination, intervals[i].second,
                       scheme.ecc_ws, packets);
      });

  AsciiTable util("Fig. 10(a): total channel utilization");
  AsciiTable delay("Fig. 10(b): mean ZigBee transmission delay (ms)");
  AsciiTable tput("Fig. 10(c): ZigBee goodput (kbit/s)  [delivery ratio]");
  std::vector<std::string> header{"scheme"};
  for (const auto& [name, d] : intervals) header.emplace_back(name);
  util.set_header(header);
  delay.set_header(header);
  tput.set_header(header);

  double bicord_util_2s = 0.0;
  double best_ecc_util_2s = 0.0;
  double bicord_delay_sum = 0.0;
  double ecc_delay_sum = 0.0;
  int ecc_delay_cells = 0;

  for (std::size_t s = 0; s < std::size(schemes); ++s) {
    const auto& scheme = schemes[s];
    std::vector<std::string> urow{scheme.name};
    std::vector<std::string> drow{scheme.name};
    std::vector<std::string> trow{scheme.name};
    for (std::size_t i = 0; i < std::size(intervals); ++i) {
      const Row& r = rows[s * n_intervals + i];
      urow.push_back(AsciiTable::percent(r.util.total));
      drow.push_back(AsciiTable::cell(r.delay_ms, 1));
      trow.push_back(AsciiTable::cell(r.goodput_kbps, 2) + " [" +
                     AsciiTable::percent(r.delivery, 0) + "]");
      if (i == std::size(intervals) - 1) {
        if (scheme.coordination == coex::Coordination::BiCord) {
          bicord_util_2s = r.util.total;
        } else {
          best_ecc_util_2s = std::max(best_ecc_util_2s, r.util.total);
        }
      }
      if (scheme.coordination == coex::Coordination::BiCord) {
        bicord_delay_sum += r.delay_ms;
      } else {
        ecc_delay_sum += r.delay_ms;
        ++ecc_delay_cells;
      }
    }
    util.add_row(urow);
    delay.add_row(drow);
    tput.add_row(trow);
  }

  std::printf("%s\n%s\n%s\n", util.render().c_str(), delay.render().c_str(),
              tput.render().c_str());
  std::printf("BiCord vs best ECC at 2 s interval: +%.1f%% utilization (paper: +50.6%%)\n",
              (bicord_util_2s / best_ecc_util_2s - 1.0) * 100.0);
  std::printf("BiCord mean delay vs ECC mean delay: -%.1f%% (paper: -84.2%%)\n",
              (1.0 - (bicord_delay_sum / 5.0) /
                         (ecc_delay_sum / static_cast<double>(ecc_delay_cells))) *
                  100.0);
  return 0;
}
