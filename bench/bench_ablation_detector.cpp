// Ablation (DESIGN.md Sec. 5): BiCord's continuity rule vs a naive
// amplitude-only detector, and the effect of the N-within-T parameter.
// The paper argues (Sec. V) that amplitude alone confuses strong noise
// impulses with ZigBee signal; the continuity of the fluctuation is what
// keeps the false-positive rate down.

#include "bench_common.hpp"
#include "coex/signaling_experiment.hpp"

using namespace bicord;
using namespace bicord::bench;

int main(int argc, char** argv) {
  const int trials = arg_or(argc, argv, 300);
  const std::uint64_t seed = 1616;
  print_header("bench_ablation_detector",
               "ablation — amplitude-only vs continuity rule (Sec. V)", seed);

  AsciiTable table;
  table.set_header({"detector", "precision", "recall", "false positives"});

  auto run = [&](const char* name, bool amplitude_only, int n_required) {
    coex::SignalingExperimentConfig cfg;
    cfg.seed = seed;
    cfg.location = coex::ZigbeeLocation::A;
    cfg.power_dbm = 0.0;
    cfg.control_packets = 4;
    cfg.trials = trials;
    cfg.amplitude_only = amplitude_only;
    cfg.detector.n_required = n_required;
    const auto r = coex::run_signaling_experiment(cfg);
    table.add_row({name, AsciiTable::cell(r.precision(), 4),
                   AsciiTable::cell(r.recall(), 4),
                   AsciiTable::cell(static_cast<std::int64_t>(r.false_positives))});
  };

  run("amplitude only (naive)", true, 1);
  run("continuity N=2 (paper)", false, 2);
  run("continuity N=3", false, 3);
  run("continuity N=4", false, 4);

  std::printf("%s\n", table.render().c_str());
  std::printf("expected: amplitude-only fires on every isolated noise impulse\n"
              "(low precision); the continuity rule trades a little recall for\n"
              "far fewer false positives, with diminishing returns beyond N=2.\n");
  return 0;
}
