// Microbenchmarks (google-benchmark) of the simulation kernel and the
// protocol hot paths: event queue throughput, RNG, CSI detection, feature
// extraction, classifier inference, medium energy queries, and end-to-end
// simulated-seconds-per-wallclock-second of the full scenario.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "bench_json.hpp"
#include "coex/scenario.hpp"
#include "coex/scenario_spec.hpp"
#include "csi/csi_detector.hpp"
#include "detect/decision_tree.hpp"
#include "detect/features.hpp"
#include "detect/kmeans.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {
using namespace bicord;
using namespace bicord::time_literals;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue queue;
  Rng rng(1);
  std::int64_t t = 0;
  const std::uint64_t allocs_before = bench::allocation_count();
  const std::uint64_t cb_allocs_before = sim::EventCallback::heap_allocation_count();
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule(TimePoint::from_us(t + rng.uniform_int(0, 1000)), [] {});
    }
    for (int i = 0; i < 64; ++i) {
      auto fired = queue.pop();
      t = fired.time.us();
      benchmark::DoNotOptimize(fired.id);
    }
  }
  const auto events = static_cast<double>(state.iterations() * 64);
  state.SetItemsProcessed(state.iterations() * 64);
  // The steady state is allocation-free: the slab and heap reach capacity
  // during the first iterations and the remaining growth amortizes to ~0.
  state.counters["allocs_per_event"] =
      static_cast<double>(bench::allocation_count() - allocs_before) / events;
  state.counters["callback_heap_allocs_per_event"] =
      static_cast<double>(sim::EventCallback::heap_allocation_count() - cb_allocs_before) /
      events;
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  const std::uint64_t allocs_before = bench::allocation_count();
  for (auto _ : state) {
    sim::Simulator sim(1);
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 1000) sim.after(10_us, chain);
    };
    sim.after(10_us, chain);
    sim.run_all();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  // Not ~0 by design: the driver copies a std::function per event, which is
  // exactly the pattern the kernel itself avoids. Tracked so the copy cost
  // stays attributed to the driver, not the queue.
  state.counters["allocs_per_event"] =
      static_cast<double>(bench::allocation_count() - allocs_before) /
      static_cast<double>(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_RngNormal(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

void BM_CsiDetectorAddSample(benchmark::State& state) {
  csi::CsiDetector detector;
  Rng rng(3);
  std::int64_t t = 0;
  for (auto _ : state) {
    csi::CsiSample s;
    t += 500;
    s.time = TimePoint::from_us(t);
    s.amplitude = rng.uniform() < 0.02 ? 1.0 : 0.1;
    detector.add_sample(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CsiDetectorAddSample);

void BM_TechFeatureExtraction(benchmark::State& state) {
  detect::RssiSegment seg;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    seg.dbm.push_back(rng.uniform() < 0.3 ? -55.0 + rng.normal() : -97.0);
  }
  const detect::FeatureParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect::extract_tech_features(seg, params));
  }
}
BENCHMARK(BM_TechFeatureExtraction);

void BM_DecisionTreePredict(benchmark::State& state) {
  detect::DecisionTree tree;
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    x.push_back({rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()});
    y.push_back(x.back()[0] + x.back()[2] > 1.0 ? 1 : 0);
  }
  tree.fit(x, y);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.predict(x[i++ % x.size()]));
  }
}
BENCHMARK(BM_DecisionTreePredict);

void BM_KmeansCluster(benchmark::State& state) {
  std::vector<std::vector<double>> rows;
  Rng data_rng(11);
  for (int i = 0; i < 120; ++i) {
    const double base = (i % 3) * 10.0;
    rows.push_back({base + data_rng.normal(), base + data_rng.normal()});
  }
  for (auto _ : state) {
    Rng rng(13);
    detect::KmeansParams p;
    p.k = 3;
    benchmark::DoNotOptimize(detect::kmeans_manhattan(rows, p, rng));
  }
}
BENCHMARK(BM_KmeansCluster);

void BM_MediumEnergyQuery(benchmark::State& state) {
  sim::Simulator sim(1);
  phy::Medium medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1});
  const auto rx = medium.add_node("rx", {0.0, 0.0});
  for (int i = 0; i < 8; ++i) {
    const auto tx = medium.add_node("tx", {1.0 + i, 0.5});
    phy::Frame f;
    f.tech = phy::Technology::WiFi;
    f.src = tx;
    medium.begin_tx(f, phy::wifi_channel(11), 20.0, 1_sec);
  }
  const auto band = phy::zigbee_channel(24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(medium.energy_dbm(rx, band));
  }
}
BENCHMARK(BM_MediumEnergyQuery);

void BM_FullScenarioSimulatedSecond(benchmark::State& state, const char* preset,
                                    int seed_override, bool spatial_index,
                                    int sim_threads) {
  auto spec = *coex::ScenarioSpec::preset(preset);
  if (seed_override >= 0) spec.set("seed", seed_override);
  spec.set("medium.spatial_index", spatial_index);
  spec.set("sim.threads", sim_threads);
  const auto cfg = spec.must_config();
  std::uint64_t events = 0;
  for (auto _ : state) {
    coex::Scenario scenario(cfg);
    scenario.run_for(1_sec);
    benchmark::DoNotOptimize(scenario.zigbee_stats().delivered);
    events += scenario.simulator().dispatched_events();
  }
  // Each iteration simulates exactly one second, so the rate counter reads
  // directly as simulated seconds per wallclock second. items_per_second is
  // events dispatched per wallclock second — the scheduler-throughput view
  // the parallel dispatcher is meant to move.
  state.counters["sim_sec_per_wall_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK_CAPTURE(BM_FullScenarioSimulatedSecond, default, "default", 5, false, 1)
    ->Unit(benchmark::kMillisecond);
// The dense pair demonstrates the spatial index at scale: same preset, same
// seed, same (bitwise-identical) simulation output — the only difference is
// whether the medium walks every node per event or a grid neighborhood.
BENCHMARK_CAPTURE(BM_FullScenarioSimulatedSecond, dense1k, "dense1k", -1, true, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullScenarioSimulatedSecond, dense1k_brute, "dense1k", -1, false, 1)
    ->Unit(benchmark::kMillisecond);
// The parallel-dispatch gate: same dense1k preset, same seed, bitwise-
// identical output, but the phased medium fan-out spreads each event's
// listener sweep over 8 worker threads. Speedup scales with physical cores;
// on a single-core host it measures pure coordination overhead instead.
BENCHMARK_CAPTURE(BM_FullScenarioSimulatedSecond, dense1k_t8, "dense1k", -1, true, 8)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
// City scale: the largest shipped preset, serial baseline for the same
// events-per-second counter.
BENCHMARK_CAPTURE(BM_FullScenarioSimulatedSecond, city, "city", -1, true, 1)
    ->Unit(benchmark::kMillisecond);
// The third/fourth technologies: LTE-U's periodic wideband bursts dominate
// the event mix (duty cycling, no per-packet MAC), while TSCH adds a lockstep
// radio retune every hop period on top of the normal link traffic.
BENCHMARK_CAPTURE(BM_FullScenarioSimulatedSecond, lteu, "lteu", -1, true, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullScenarioSimulatedSecond, tsch, "tsch", -1, true, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return bicord::bench::run_benchmarks(argc, argv); }
