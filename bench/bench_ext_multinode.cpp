// Extension experiment (paper Sec. VI): multiple coexisting ZigBee nodes
// with *different* traffic patterns share one Wi-Fi device's white spaces.
// The Wi-Fi side cannot tell requesters apart (the request is one bit), so
// its estimate must track the mixture; nodes contend inside each white
// space with plain CSMA. We report per-link delivery/delay, total channel
// utilization, and Jain's fairness index over per-link goodput.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
double jain_index(const std::vector<double>& x) {
  double sum = 0.0;
  double sum2 = 0.0;
  for (double v : x) {
    sum += v;
    sum2 += v * v;
  }
  if (sum2 <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(x.size()) * sum2);
}
}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = 2020 + static_cast<std::uint64_t>(arg_or(argc, argv, 0));
  print_header("bench_ext_multinode",
               "extension — multiple ZigBee nodes with mixed patterns (Sec. VI)",
               seed);

  AsciiTable table;
  table.set_header({"links", "total util", "per-link delivery", "per-link delay (ms)",
                    "goodput fairness"});

  for (int links = 1; links <= 3; ++links) {
    // The multinode preset carries the full three-link topology (primary at A
    // plus the chattier mid-room node and the slow long-burst node); the sweep
    // truncates the extra-link list to its first `links - 1` entries.
    auto spec = *coex::ScenarioSpec::preset("multinode");
    spec.set("seed", seed);
    auto cfg = spec.must_config();
    cfg.extra_zigbee.resize(static_cast<std::size_t>(links - 1));

    coex::Scenario scenario(cfg);
    warm_and_measure(scenario, 1_sec, 15_sec);

    std::string delivery;
    std::string delay;
    std::vector<double> goodputs;
    for (std::size_t i = 0; i < scenario.zigbee_link_count(); ++i) {
      const auto& s = scenario.zigbee_stats_at(i);
      if (i > 0) {
        delivery += " / ";
        delay += " / ";
      }
      delivery += AsciiTable::percent(s.delivery_ratio(), 0);
      delay += AsciiTable::cell(s.delay_ms.empty() ? 0.0 : s.delay_ms.mean(), 0);
      goodputs.push_back(static_cast<double>(s.payload_bytes_delivered) /
                         std::max<double>(1.0, static_cast<double>(s.generated) * 50.0));
    }
    table.add_row({AsciiTable::cell(std::int64_t{links}),
                   AsciiTable::percent(scenario.utilization().total), delivery, delay,
                   AsciiTable::cell(jain_index(goodputs), 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: delivery stays high for every link; delay grows moderately\n"
              "with contention inside shared white spaces; utilization stays high\n"
              "because the allocator tracks the *mixture* of patterns.\n");
  return 0;
}
