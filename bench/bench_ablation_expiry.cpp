// Ablation (DESIGN.md Sec. 5): the re-estimation expiry timer.
// When the ZigBee traffic pattern *shrinks* (e.g. 12-packet bursts drop to
// 3-packet bursts mid-run), the Wi-Fi device cannot notice — it keeps
// granting the old, oversized white space. BiCord's 10 s expiry timer
// forces periodic re-learning. This bench disables/varies the timer and
// measures post-shrink channel utilization.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

int main(int argc, char** argv) {
  const std::uint64_t seed = 1818 + static_cast<std::uint64_t>(arg_or(argc, argv, 0));
  print_header("bench_ablation_expiry",
               "ablation — re-estimation expiry timer (Sec. VI)", seed);

  AsciiTable table;
  table.set_header({"expiry timer", "post-shrink total util", "post-shrink ws (ms)",
                    "zb delay (ms)"});

  for (const auto& [name, period] :
       {std::pair<const char*, Duration>{"2 s", 2_sec},
        std::pair<const char*, Duration>{"10 s (paper)", 10_sec},
        std::pair<const char*, Duration>{"disabled", 10000_sec}}) {
    auto spec = *coex::ScenarioSpec::preset("default");
    spec.set("seed", seed);
    spec.set("burst.packets", 12);  // long bursts first
    spec.set("burst.poisson", false);
    spec.set("allocator.reestimate_period", period);
    coex::Scenario scenario(spec.must_config());

    scenario.run_for(6_sec);  // learn the 12-packet pattern
    auto shrunk = scenario.burst_source().config();
    shrunk.packets_per_burst = 3;  // pattern shrinks
    scenario.burst_source().set_config(shrunk);
    scenario.run_for(4_sec);  // let the expiry (if any) fire
    scenario.start_measurement();
    scenario.run_for(10_sec);

    const auto util = scenario.utilization();
    const auto& delays = scenario.zigbee_stats().delay_ms;
    table.add_row({name, AsciiTable::percent(util.total),
                   AsciiTable::cell(scenario.bicord_wifi()->allocator().estimate().ms(), 1),
                   AsciiTable::cell(delays.empty() ? 0.0 : delays.mean(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: without the expiry the white space stays sized for the\n"
              "old 12-packet bursts and utilization suffers; the timer recovers it.\n");
  return 0;
}
