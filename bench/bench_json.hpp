#pragma once
// Measurement plumbing for the google-benchmark microbench binary (separate
// from bench_common.hpp, which serves the reproduction benches and must not
// depend on google-benchmark):
//
//  * a counting replacement of the global operator new/delete, so benchmarks
//    can assert "this loop does not allocate" (allocs_per_event counters);
//  * a reporter that forwards to the normal console output AND writes every
//    reported metric as one flat `"benchmark.metric": value` line of JSON,
//    so scripts/bench.sh can diff runs with nothing but awk.
//
// The operator new/delete replacements below are *definitions* of the global
// allocation functions, which the language allows in exactly one translation
// unit per program. Include this header only from a benchmark main TU, never
// from the library.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <string>
#include <utility>
#include <vector>

namespace bicord::bench {

namespace detail {
inline std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace detail

/// Number of global operator-new calls since process start. Sample before and
/// after a timed loop; the difference is what the loop (plus the harness's own
/// bookkeeping, which amortizes to ~0 over many iterations) allocated.
inline std::uint64_t allocation_count() {
  return detail::g_alloc_count.load(std::memory_order_relaxed);
}

}  // namespace bicord::bench

// --- global allocation hook (one-TU-only definitions) -----------------------

void* operator new(std::size_t size) {
  bicord::bench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  bicord::bench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}

void* operator new(std::size_t size, std::align_val_t align) {
  bicord::bench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace bicord::bench {

/// Console output as usual, plus a machine-readable summary. Every metric is
/// one line of the form
///     "BM_Name.metric": 1234.5,
/// inside a single top-level object, so shell tooling can grep a metric by
/// name without a JSON parser. When repetitions are aggregated the median run
/// is recorded (mean/stddev/cv are skipped); without aggregates the raw
/// iteration run is recorded directly.
class JsonFileReporter final : public benchmark::ConsoleReporter {
 public:
  explicit JsonFileReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      if (run.run_type == Run::RT_Aggregate && run.aggregate_name != "median") continue;
      // A median aggregate arrives after the family's raw runs and simply
      // overwrites them in the map.
      const std::string name = run.run_name.str();
      // GetAdjusted*Time reports in the benchmark's display unit; normalize
      // to nanoseconds so every time metric in the file is comparable.
      const double to_ns = [&] {
        switch (run.time_unit) {
          case benchmark::kNanosecond: return 1.0;
          case benchmark::kMicrosecond: return 1e3;
          case benchmark::kMillisecond: return 1e6;
          case benchmark::kSecond: return 1e9;
        }
        return 1.0;
      }();
      metrics_[name + ".real_ns_per_iter"] = run.GetAdjustedRealTime() * to_ns;
      metrics_[name + ".cpu_ns_per_iter"] = run.GetAdjustedCPUTime() * to_ns;
      for (const auto& [counter_name, counter] : run.counters) {
        metrics_[name + "." + counter_name] = counter.value;
      }
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    if (path_.empty()) return;
    std::ofstream out(path_);
    if (!out) {
      GetErrorStream() << "bench: cannot write " << path_ << "\n";
      return;
    }
    out.precision(17);
    out << "{\n";
    std::size_t i = 0;
    for (const auto& [key, value] : metrics_) {
      out << "  \"" << key << "\": " << value << (++i == metrics_.size() ? "\n" : ",\n");
    }
    out << "}\n";
    GetErrorStream() << "bench: wrote " << metrics_.size() << " metrics to " << path_
                     << "\n";
  }

 private:
  std::string path_;
  std::map<std::string, double> metrics_;  // sorted -> stable, diffable output
};

/// Entry point for benchmark mains: console + JSON output. The JSON path
/// comes from BICORD_BENCH_JSON; empty or unset disables the file (the
/// benchmark still runs and prints normally).
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* path = std::getenv("BICORD_BENCH_JSON");
  JsonFileReporter reporter(path == nullptr ? std::string() : std::string(path));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace bicord::bench
