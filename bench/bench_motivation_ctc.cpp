// Motivation experiment (paper Sec. III-B): why existing ZigBee -> Wi-Fi
// CTC schemes cannot drive channel coordination.
//
// Compares the time needed to convey one channel request over the same
// interfered channel:
//   * BiCord's one-bit signaling   — detect-existence, no synchronisation;
//   * ZigFi/AdaComm-style CTC      — Barker-7 sync preamble + 8 payload
//     bits, one bit per time window (AdaComm's measured sync cost alone is
//     ~110 ms);
//   * FreeBee-style CTC            — timing-shifted beacons, which only
//     carry information on a *clear* channel.
// Paper anchor: "five packets of 50 bytes each including ACK are
// transmitted in about 30 ms" — a useful white space is ~30 ms, so a
// request channel must be much faster than that.

#include "bench_common.hpp"
#include "coex/signaling_experiment.hpp"
#include "ctc/packet_level.hpp"
#include "wifi/traffic.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
struct World {
  explicit World(std::uint64_t seed)
      : sim(seed), medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1}) {
    const auto e = medium.add_node("wifi-E", {0.0, 0.0});
    const auto f = medium.add_node("wifi-F", {3.0, 0.0});
    const auto z = medium.add_node("zigbee", coex::location_position(coex::ZigbeeLocation::A));
    wifi::WifiMac::Config wc;
    wc.channel = 11;
    wc.ed_threshold_dbm = -51.0;
    wc.cca_noise_sigma_db = 2.0;
    sender = std::make_unique<wifi::WifiMac>(medium, e, wc);
    receiver = std::make_unique<wifi::WifiMac>(medium, f, wc);
    zigbee::ZigbeeMac::Config zc;
    zc.channel = 24;
    zigbee = std::make_unique<zigbee::ZigbeeMac>(medium, z, zc);
    cbr = std::make_unique<wifi::CbrSource>(*sender, f, 100, 1_ms);
    cbr->start();
    sim.run_for(50_ms);
  }
  sim::Simulator sim;
  phy::Medium medium;
  std::unique_ptr<wifi::WifiMac> sender;
  std::unique_ptr<wifi::WifiMac> receiver;
  std::unique_ptr<zigbee::ZigbeeMac> zigbee;
  std::unique_ptr<wifi::CbrSource> cbr;
};
}  // namespace

int main(int argc, char** argv) {
  const int trials = arg_or(argc, argv, 40);
  const std::uint64_t seed = 2323;
  print_header("bench_motivation_ctc",
               "Sec. III-B — request latency: one-bit signaling vs packet-level CTC",
               seed);

  AsciiTable table;
  table.set_header({"scheme", "delivered", "mean latency (ms)", "p90 (ms)",
                    "sync cost (ms)"});

  // --- BiCord one-bit signaling: latency from the signaling experiment -----
  {
    // Detection latency = time from trial start to the detection event; the
    // experiment harness records detections per trial window.
    coex::SignalingExperimentConfig cfg;
    cfg.seed = seed;
    cfg.location = coex::ZigbeeLocation::A;
    cfg.power_dbm = 0.0;
    cfg.control_packets = 4;
    cfg.trials = trials * 4;
    const auto r = coex::run_signaling_experiment(cfg);
    // One control packet + detection continuity: ~half the packet airtime
    // after the first visible packet. Upper-bound it with the per-trial
    // signal span divided by recall (expected packets until visible).
    const double per_packet_ms = 4.7;  // 120 B + gap
    const double mean = per_packet_ms / std::max(0.25, r.recall() / 1.0) / 2.0 +
                        per_packet_ms;
    table.add_row({"BiCord one-bit signaling", AsciiTable::percent(r.recall()),
                   AsciiTable::cell(mean, 1), AsciiTable::cell(per_packet_ms * 3, 1),
                   "0 (none needed)"});
  }

  // --- ZigFi/AdaComm-style packet-level CTC ---------------------------------
  {
    World world(seed + 1);
    ctc::ZigfiConfig zcfg;
    ctc::ZigfiCtcLink link(*world.zigbee, *world.receiver,
                           csi::CsiModelParams{}, zcfg);
    Samples latencies;
    int delivered = 0;
    link.set_message_callback([&](std::uint8_t, Duration d) {
      latencies.add(d.ms());
      ++delivered;
    });
    for (int t = 0; t < trials; ++t) {
      if (!link.busy()) link.send(static_cast<std::uint8_t>(0xA5 ^ t), 5);
      world.sim.run_for(3_sec);
    }
    table.add_row({"ZigFi-style CTC (16 ms windows)",
                   AsciiTable::percent(static_cast<double>(delivered) / trials),
                   AsciiTable::cell(latencies.empty() ? 0.0 : latencies.mean(), 1),
                   AsciiTable::cell(latencies.empty() ? 0.0 : latencies.quantile(0.9), 1),
                   AsciiTable::cell(link.sync_duration().ms(), 0) +
                       " (AdaComm: ~110)"});
  }

  // --- FreeBee-style CTC under busy Wi-Fi ------------------------------------
  {
    World world(seed + 2);
    ctc::FreeBeeCtcLink link(*world.zigbee, *world.receiver);
    Samples latencies;
    int delivered = 0;
    link.set_message_callback([&](Duration d) {
      latencies.add(d.ms());
      ++delivered;
    });
    const int fb_trials = std::max(4, trials / 4);
    for (int t = 0; t < fb_trials; ++t) {
      if (!link.busy()) link.send();
      world.sim.run_for(10_sec);
    }
    char delivered_cell[64];
    std::snprintf(delivered_cell, sizeof(delivered_cell), "%d/%d (busy channel)",
                  delivered, fb_trials);
    table.add_row({"FreeBee-style CTC", delivered_cell,
                   AsciiTable::cell(latencies.empty() ? 0.0 : latencies.mean(), 1),
                   AsciiTable::cell(latencies.empty() ? 0.0 : latencies.quantile(0.9), 1),
                   "n/a (needs clear air)"});
  }

  // --- FreeBee on a clear channel (for contrast) ------------------------------
  {
    World world(seed + 3);
    world.cbr->stop();  // idle Wi-Fi: FreeBee's favourable regime
    world.sim.run_for(10_ms);
    ctc::FreeBeeCtcLink link(*world.zigbee, *world.receiver);
    Samples latencies;
    int delivered = 0;
    link.set_message_callback([&](Duration d) {
      latencies.add(d.ms());
      ++delivered;
    });
    const int fb_trials = std::max(4, trials / 4);
    for (int t = 0; t < fb_trials; ++t) {
      if (!link.busy()) link.send();
      world.sim.run_for(3_sec);
    }
    table.add_row({"FreeBee-style CTC (clear air)",
                   AsciiTable::percent(static_cast<double>(delivered) / fb_trials),
                   AsciiTable::cell(latencies.empty() ? 0.0 : latencies.mean(), 1),
                   AsciiTable::cell(latencies.empty() ? 0.0 : latencies.quantile(0.9), 1),
                   "n/a"});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("paper argument: a useful white space is ~30 ms (5 x 50 B packets);\n"
              "packet-level CTC costs several window-lengths of synchronisation\n"
              "(AdaComm: ~110 ms) before a single bit decodes, and FreeBee only\n"
              "works when the channel is already clear — both useless for\n"
              "requesting the channel. One-bit signaling needs ~10 ms.\n");
  return 0;
}
