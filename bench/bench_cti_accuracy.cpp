// Sec. VII-A accuracy numbers: the CTI-detection pipeline. A ZigBee
// collector records 200 RSSI segments (40 kHz, 5 ms) per source — foreign
// ZigBee (50 B / 2 ms), a Bluetooth headset stream, a microwave oven, and a
// Wi-Fi CBR sender at 1, 3, and 5 m — then trains the ZiSense decision tree
// and the Smoggy-Link k-means fingerprints. Paper anchors: Wi-Fi detection
// accuracy 96.39 %; per-device identification 89.76 % +/- 2.14 %.

#include "bench_common.hpp"
#include "coex/cti_training.hpp"

using namespace bicord;
using namespace bicord::bench;

int main(int argc, char** argv) {
  const int segments = arg_or(argc, argv, 200);  // paper: 200
  const std::uint64_t seed = 1414;
  print_header("bench_cti_accuracy", "Sec. VII-A (CTI detection accuracy)", seed);
  std::printf("segments per source: %d\n\n", segments);

  coex::CtiTrainingConfig cfg;
  cfg.seed = seed;
  cfg.segments_per_source = segments;
  const auto result = coex::train_cti_pipeline(cfg);

  AsciiTable table;
  table.set_header({"metric", "measured", "paper"});
  table.add_row({"Wi-Fi detection accuracy",
                 AsciiTable::percent(result.wifi_detection_accuracy, 2), "96.39%"});
  table.add_row({"multi-class technology accuracy",
                 AsciiTable::percent(result.tech_accuracy, 2), "(n/a)"});
  table.add_row({"device identification accuracy",
                 AsciiTable::percent(result.device_accuracy, 2), "89.76%"});
  table.add_row({"device accuracy std-dev",
                 AsciiTable::percent(result.device_accuracy_std, 2), "2.14%"});
  table.add_row({"training segments",
                 AsciiTable::cell(static_cast<std::int64_t>(result.training_segments)),
                 "~600"});
  table.add_row({"held-out segments",
                 AsciiTable::cell(static_cast<std::int64_t>(result.test_segments)),
                 "~600"});
  std::printf("%s\n", table.render().c_str());
  return 0;
}
