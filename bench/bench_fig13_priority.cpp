// Fig. 13 (paper Sec. VIII-G): coexistence with prioritized Wi-Fi traffic.
// The Wi-Fi device carries a mix of high-priority (video) and low-priority
// (file transfer) traffic; while high-priority traffic is active it ignores
// ZigBee requests. The high-priority share sweeps 0.1 .. 0.5. Paper
// anchors: BiCord's total utilization beats ECC-20 (+3.11 %) and ECC-30
// (+9.76 %); ZigBee utilization beats them by +46.05 % / +27.97 %;
// low-priority Wi-Fi delay is ~6 % lower under BiCord; high-priority Wi-Fi
// sees near-zero added delay.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
struct Row {
  coex::UtilizationReport util;
  double low_delay_ms = 0.0;
  double high_delay_ms = 0.0;
};

Row run_one(std::uint64_t seed, coex::Coordination scheme, Duration ecc_ws,
            double high_share) {
  auto spec = *coex::ScenarioSpec::preset("fig13");
  spec.set("seed", seed);
  spec.set("coordination", coex::to_string(scheme));
  spec.set("wifi.high_share", high_share);
  spec.set("ecc.whitespace", ecc_ws);
  coex::Scenario scenario(spec.must_config());
  warm_and_measure(scenario, 1_sec, 10_sec);  // paper: 10 s of traffic
  Row r;
  r.util = scenario.utilization();
  const auto& low = scenario.wifi_delay_ms(0);
  const auto& high = scenario.wifi_delay_ms(1);
  r.low_delay_ms = low.empty() ? 0.0 : low.mean();
  r.high_delay_ms = high.empty() ? 0.0 : high.mean();
  return r;
}
}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv, 0);  // scale shifts the seed
  const std::uint64_t seed = 1313 + static_cast<std::uint64_t>(args.scale);
  print_header("bench_fig13_priority", "Fig. 13 — prioritized Wi-Fi traffic", seed);

  struct SchemeSpec {
    const char* name;
    coex::Coordination coordination;
    Duration ecc_ws;
  };
  const SchemeSpec schemes[] = {{"BiCord", coex::Coordination::BiCord, 0_ms},
                                {"ECC-20ms", coex::Coordination::Ecc, 20_ms},
                                {"ECC-30ms", coex::Coordination::Ecc, 30_ms}};

  AsciiTable util("Fig. 13 (left): total [ZigBee] channel utilization");
  AsciiTable delay("Fig. 13 (right): low-priority Wi-Fi delay, ms [high-priority]");
  std::vector<std::string> header{"scheme"};
  for (double share : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    header.push_back("share " + AsciiTable::cell(share, 1));
  }
  util.set_header(header);
  delay.set_header(header);

  // One trial per (scheme, share) cell, assembled in cell order below.
  const double shares[] = {0.1, 0.2, 0.3, 0.4, 0.5};
  const std::size_t n_shares = std::size(shares);
  const std::vector<Row> rows = sweep<Row>(
      "fig13 sweep", std::size(schemes) * n_shares, args.jobs,
      [&](std::size_t t) {
        const auto& scheme = schemes[t / n_shares];
        const std::size_t i = t % n_shares;
        return run_one(seed + i * 11, scheme.coordination, scheme.ecc_ws, shares[i]);
      });

  for (std::size_t s = 0; s < std::size(schemes); ++s) {
    const auto& scheme = schemes[s];
    std::vector<std::string> urow{scheme.name};
    std::vector<std::string> drow{scheme.name};
    for (std::size_t i = 0; i < n_shares; ++i) {
      const Row& r = rows[s * n_shares + i];
      urow.push_back(AsciiTable::percent(r.util.total) + " [" +
                     AsciiTable::percent(r.util.zigbee) + "]");
      drow.push_back(AsciiTable::cell(r.low_delay_ms, 1) + " [" +
                     AsciiTable::cell(r.high_delay_ms, 1) + "]");
    }
    util.add_row(urow);
    delay.add_row(drow);
  }
  std::printf("%s\n%s\n", util.render().c_str(), delay.render().c_str());
  std::printf("paper anchors: BiCord total util > ECC-20 (+3.11%%) and ECC-30\n"
              "(+9.76%%); ZigBee util +46%% / +28%% over ECC-20/30; low-priority\n"
              "Wi-Fi delay ~6%% lower under BiCord; high-priority delay ~unaffected.\n");
  return 0;
}
