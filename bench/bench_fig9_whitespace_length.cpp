// Fig. 9 (paper Sec. VIII-C): white space generated after the adjustment
// phase, for bursts of 5/10/15 packets and steps of 30/40 ms, with the
// over-provisioning relative to the actual requirement. Paper anchors: the
// white space grows with burst duration; a longer step over-provisions
// more; over-provision was 27.1 % / 12.5 % / 20.4 % for 5/10/15 packets.

#include "bench_common.hpp"

using namespace bicord;
using namespace bicord::bench;
using namespace bicord::time_literals;

namespace {
Duration converged_whitespace(std::uint64_t seed, int packets, Duration step) {
  auto spec = *coex::ScenarioSpec::preset("fig9");
  spec.set("seed", seed);
  spec.set("burst.packets", packets);
  spec.set("allocator.initial_whitespace", step);

  coex::Scenario scenario(spec.must_config());
  for (int i = 0; i < 60; ++i) {
    scenario.run_for(250_ms);
    if (scenario.bicord_wifi()->allocator().converged()) break;
  }
  return scenario.bicord_wifi()->allocator().estimate();
}
}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_args(argc, argv, 8);
  const int reps = args.scale;
  const std::uint64_t seed = 99;
  print_header("bench_fig9_whitespace_length",
               "Fig. 9 (white space generated after the adjustment phase)", seed);

  // Trial list in (packets, rep, step) order; aggregation below replays the
  // same order, so --jobs never changes the table.
  struct Trial {
    int packets;
    Duration step;
    std::uint64_t seed;
  };
  std::vector<Trial> trials;
  for (int packets : {5, 10, 15}) {
    for (int rep = 0; rep < reps; ++rep) {
      const auto rep_seed = seed + static_cast<std::uint64_t>(rep) * 313;
      trials.push_back({packets, 30_ms, rep_seed});
      trials.push_back({packets, 40_ms, rep_seed + 3});
    }
  }
  const std::vector<double> widths = sweep<double>(
      "fig9 sweep", trials.size(), args.jobs, [&](std::size_t t) {
        const Trial& trial = trials[t];
        return converged_whitespace(trial.seed, trial.packets, trial.step).ms();
      });

  AsciiTable table;
  table.set_header({"packets", "burst need (ms)", "ws @30ms step", "ws @40ms step",
                    "over-prov @30", "over-prov @40"});
  std::size_t next = 0;
  for (int packets : {5, 10, 15}) {
    RunningStats ws30;
    RunningStats ws40;
    for (int rep = 0; rep < reps; ++rep) {
      ws30.add(widths[next++]);
      ws40.add(widths[next++]);
    }
    // Requirement: signaling lead plus the burst itself. This substrate's
    // measured per-packet cycle (CSMA + 50 B data + ACK + pacing) is
    // ~5.7 ms; the paper's hardware ran at 6.27 ms per packet.
    const double need_ms = 4.0 + 5.7 * packets;
    table.add_row({AsciiTable::cell(std::int64_t{packets}),
                   AsciiTable::cell(need_ms, 1), AsciiTable::cell(ws30.mean(), 1),
                   AsciiTable::cell(ws40.mean(), 1),
                   AsciiTable::percent(ws30.mean() / need_ms - 1.0),
                   AsciiTable::percent(ws40.mean() / need_ms - 1.0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper anchors: white space grows with burst size; 40 ms steps\n"
              "over-provision more than 30 ms steps; over-provision 27.1%%,\n"
              "12.5%%, 20.4%% for 5, 10, 15 packets (30 ms step).\n");
  return 0;
}
