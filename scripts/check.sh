#!/usr/bin/env bash
# Full correctness gate: plain build + tests, then the runner tests under
# ThreadSanitizer (data races in the trial executor), then the whole suite
# under ASan+UBSan. Each sanitizer gets its own build directory so the
# builds never contaminate each other.
#
# Usage:  scripts/check.sh [fast|lint|chaos|bench|examples]
#   default — plain + lint (clang-tidy + bicord_lint) + TSAN + ASan/UBSan,
#             i.e. warnings -> static gates -> tests -> sanitizers
#   fast    — plain build + tests only
#   lint    — static gates only: clang-tidy (skipped with a notice when the
#             tool is absent) and tools/bicord_lint, both against ratcheted
#             baselines (see scripts/lint.sh and DESIGN.md Sec. 10)
#   chaos   — chaos soak (fixed seed): fault tests under ASan/UBSan and the
#             parallel soak under TSAN, plus a mixed-plan bicordsim run whose
#             invariant checker gates the exit code
#   bench   — perf smoke: one fast bench_micro pass asserting the
#             machine-independent invariants (hot path allocation-free);
#             absolute-time comparison is opt-in via scripts/bench.sh compare
#   examples — builds and runs all four examples as smoke tests; any nonzero
#             exit (or a crash mid-render) fails the gate

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"
JOBS="$(nproc 2>/dev/null || echo 2)"

if [ "$MODE" = "bench" ]; then
  echo "== perf smoke: bench_micro allocation invariants =="
  exec scripts/bench.sh smoke
fi

if [ "$MODE" = "lint" ]; then
  echo "== static gates: clang-tidy + bicord_lint =="
  exec scripts/lint.sh all
fi

if [ "$MODE" = "examples" ]; then
  EXAMPLES=(quickstart smart_home industrial_monitoring signaling_demo)
  echo "== examples smoke: build + run ${EXAMPLES[*]} =="
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target "${EXAMPLES[@]}"
  for ex in "${EXAMPLES[@]}"; do
    echo
    echo "== examples smoke: $ex =="
    "./build/examples/$ex" > /dev/null
  done
  echo
  echo "OK: all ${#EXAMPLES[@]} examples ran clean"
  exit 0
fi

if [ "$MODE" = "chaos" ]; then
  echo "== chaos soak: ASan + UBSan, fault tests =="
  cmake -B build-asan -S . -DBICORD_SANITIZE=address > /dev/null
  cmake --build build-asan -j "$JOBS" --target fault_tests bicordsim
  ./build-asan/tests/fault_tests

  echo
  echo "== chaos soak: TSAN, parallel soak + runner tests =="
  cmake -B build-tsan -S . -DBICORD_SANITIZE=thread > /dev/null
  cmake --build build-tsan -j "$JOBS" --target fault_tests runner_tests
  ./build-tsan/tests/fault_tests --gtest_filter='ChaosSoakTest.*'
  ./build-tsan/tests/runner_tests

  echo
  echo "== chaos soak: bicordsim --fault-plan mixed (invariants gate exit) =="
  ./build-asan/tools/bicordsim --fault-plan mixed --seconds 8 --seed 7

  echo
  echo "OK: chaos soak green (ASan/UBSan + TSAN, seed 7)"
  exit 0
fi

echo "== plain build + tests =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [ "$MODE" = "fast" ]; then
  echo "OK (fast)"
  exit 0
fi

echo
echo "== static gates: clang-tidy + bicord_lint =="
scripts/lint.sh all

echo
echo "== ThreadSanitizer: runner tests =="
cmake -B build-tsan -S . -DBICORD_SANITIZE=thread > /dev/null
cmake --build build-tsan -j "$JOBS" --target runner_tests
./build-tsan/tests/runner_tests

echo
echo "== ASan + UBSan: full suite =="
cmake -B build-asan -S . -DBICORD_SANITIZE=address > /dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo
echo "OK: plain, lint, TSAN (runner), ASan/UBSan all green"
