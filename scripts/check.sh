#!/usr/bin/env bash
# Full correctness gate: plain build + tests, then the runner tests under
# ThreadSanitizer (data races in the trial executor), then the whole suite
# under ASan+UBSan. Each sanitizer gets its own build directory so the
# builds never contaminate each other.
#
# Usage:  scripts/check.sh [fast|lint|lint-fast|chaos|bench|examples|dense|failover|parallel|techs]
#   default — plain + lint (clang-tidy + bicord_lint) + dense smoke +
#             parallel smoke + techs smoke + failover smoke + TSAN +
#             ASan/UBSan, i.e. warnings -> static gates -> tests -> sanitizers
#   fast    — plain build + tests only
#   lint    — static gates only: clang-tidy (skipped with a notice when the
#             tool is absent) and tools/bicord_lint, both against ratcheted
#             baselines (see scripts/lint.sh and DESIGN.md Sec. 10)
#   lint-fast — inner-loop static gate: bicord_lint on CHANGED files only
#             (git diff vs HEAD + staged + untracked; BICORD_FORMAT_BASE
#             widens the range). Same exit-code contract as lint (0 clean,
#             2 new findings, 3 ratchet violation); clang-tidy is skipped
#   dense   — dense-scenario smoke: the medium equivalence/stress suites,
#             then bicordsim on the dense + dense1k presets twice each —
#             spatial index on vs off — asserting byte-identical output
#             (DESIGN.md Sec. 12); part of the default full gate
#   chaos   — chaos soak (fixed seed): fault tests under ASan/UBSan and the
#             parallel soak under TSAN, plus a mixed-plan bicordsim run whose
#             invariant checker gates the exit code
#   failover — multi-grantor smoke: the election/failover suites plus a
#             16-seed failover soak under ASan/UBSan and the soak again under
#             TSAN, then a failover-preset bicordsim run (clock skew + primary
#             kill/rejoin) whose invariant checker gates the exit code; part
#             of the default full gate
#   parallel — intra-sim parallelism smoke: the WorkerPool/ParallelDispatcher
#             and phased-fanout suites under TSAN (race detection on the real
#             absorb/react split), then bicordsim on dense1k with
#             --sim-threads 1 vs 8 asserting byte-identical stdout (the
#             bitwise-determinism contract of DESIGN.md Sec. 14); part of the
#             default full gate
#   techs   — third/fourth-technology smoke: the LTE-U + TSCH suite under
#             ASan/UBSan, then bicordsim on the lteu and tsch presets at
#             --sim-threads 1 vs 8 asserting byte-identical stdout (the
#             TechnologyTraits seam proof of DESIGN.md Sec. 15); part of the
#             default full gate
#   bench   — perf smoke: one fast bench_micro pass asserting the
#             machine-independent invariants (hot path allocation-free);
#             absolute-time comparison is opt-in via scripts/bench.sh compare
#   examples — builds and runs all four examples as smoke tests; any nonzero
#             exit (or a crash mid-render) fails the gate

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"
JOBS="$(nproc 2>/dev/null || echo 2)"

if [ "$MODE" = "bench" ]; then
  echo "== perf smoke: bench_micro allocation invariants =="
  exec scripts/bench.sh smoke
fi

if [ "$MODE" = "lint" ]; then
  echo "== static gates: clang-tidy + bicord_lint =="
  exec scripts/lint.sh all
fi

if [ "$MODE" = "lint-fast" ]; then
  echo "== static gate (inner loop): bicord_lint, changed files only =="
  exec scripts/lint.sh fast
fi

if [ "$MODE" = "examples" ]; then
  EXAMPLES=(quickstart smart_home industrial_monitoring signaling_demo)
  echo "== examples smoke: build + run ${EXAMPLES[*]} =="
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target "${EXAMPLES[@]}"
  for ex in "${EXAMPLES[@]}"; do
    echo
    echo "== examples smoke: $ex =="
    "./build/examples/$ex" > /dev/null
  done
  echo
  echo "OK: all ${#EXAMPLES[@]} examples ran clean"
  exit 0
fi

# Dense smoke: prove the spatially-indexed medium is output-identical to the
# brute-force reference on the shipped dense presets, end to end through
# bicordsim (stdout is deterministic, so plain diff is the equality gate).
dense_smoke() {
  ./build/tests/phy_tests --gtest_filter='MediumEquivalence.*:MediumStress.*'
  local preset args out_idx out_brute
  for preset in dense dense1k; do
    case "$preset" in
      dense)   args=(--seconds 3) ;;              # churn plan fires inside 4 sim-s
      dense1k) args=(--warmup-seconds 0 --seconds 1) ;;
    esac
    out_idx="build/dense_smoke_${preset}_indexed.txt"
    out_brute="build/dense_smoke_${preset}_brute.txt"
    echo "-- $preset: indexed vs brute-force"
    ./build/tools/bicordsim --scenario "$preset" "${args[@]}" > "$out_idx"
    ./build/tools/bicordsim --scenario "$preset" "${args[@]}" \
      --set medium.spatial_index=false > "$out_brute"
    diff "$out_idx" "$out_brute" || {
      echo "FAIL: $preset output differs between spatial index on and off" >&2
      return 1
    }
  done
  echo "OK: dense presets byte-identical with the spatial index on and off"
}

if [ "$MODE" = "dense" ]; then
  echo "== dense smoke: spatial index vs brute force =="
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target bicordsim phy_tests
  dense_smoke
  exit 0
fi

# Parallel smoke: the intra-simulation parallelism contract. The TSAN leg
# runs the WorkerPool/ParallelDispatcher unit suite and the phased-fanout
# equivalence/teleport stress (real worker threads racing over the absorb
# phase); the bicordsim leg pins the user-visible contract — dense1k stdout
# is byte-identical at sim.threads 1 and 8.
parallel_smoke_tsan() {
  ./build-tsan/tests/sim_tests \
    --gtest_filter='WorkerPoolTest.*:ParallelDispatcherTest.*:PhasedFanoutTest.*'
}

parallel_smoke_sim() {
  local out_serial="build/parallel_smoke_dense1k_t1.txt"
  local out_par="build/parallel_smoke_dense1k_t8.txt"
  echo "-- dense1k: sim.threads 1 vs 8"
  ./build/tools/bicordsim --scenario dense1k --warmup-seconds 0 --seconds 1 \
    --sim-threads 1 > "$out_serial"
  ./build/tools/bicordsim --scenario dense1k --warmup-seconds 0 --seconds 1 \
    --sim-threads 8 > "$out_par" 2> /dev/null
  diff "$out_serial" "$out_par" || {
    echo "FAIL: dense1k output differs between sim.threads 1 and 8" >&2
    return 1
  }
  echo "OK: dense1k byte-identical at sim.threads 1 and 8"
}

if [ "$MODE" = "parallel" ]; then
  echo "== parallel smoke: TSAN, worker pool + dispatcher + phased fanout =="
  cmake -B build-tsan -S . -DBICORD_SANITIZE=thread > /dev/null
  cmake --build build-tsan -j "$JOBS" --target sim_tests
  parallel_smoke_tsan

  echo
  echo "== parallel smoke: bicordsim dense1k sim.threads 1 vs 8 =="
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target bicordsim
  parallel_smoke_sim

  echo
  echo "OK: parallel smoke green (TSAN + bitwise 1-vs-8)"
  exit 0
fi

# Techs smoke: the LTE-U and TSCH technologies — the two instantiations
# that prove the TechnologyTraits seam carries a whole technology without
# engine surgery. The ASan leg runs their unit/scenario suite; the bicordsim
# leg pins both presets byte-identical at sim.threads 1 vs 8 (TSCH retunes
# radios mid-run, so frequency agility is the shard-plan risk to watch).
techs_smoke_asan() {
  ./build-asan/tests/techs_tests
}

techs_smoke_sim() {
  local preset out_serial out_par
  for preset in lteu tsch; do
    out_serial="build/techs_smoke_${preset}_t1.txt"
    out_par="build/techs_smoke_${preset}_t8.txt"
    echo "-- $preset: sim.threads 1 vs 8"
    ./build/tools/bicordsim --scenario "$preset" --seconds 3 \
      --sim-threads 1 > "$out_serial"
    ./build/tools/bicordsim --scenario "$preset" --seconds 3 \
      --sim-threads 8 > "$out_par" 2> /dev/null
    diff "$out_serial" "$out_par" || {
      echo "FAIL: $preset output differs between sim.threads 1 and 8" >&2
      return 1
    }
  done
  echo "OK: lteu + tsch presets byte-identical at sim.threads 1 and 8"
}

if [ "$MODE" = "techs" ]; then
  echo "== techs smoke: ASan + UBSan, LTE-U + TSCH suite =="
  cmake -B build-asan -S . -DBICORD_SANITIZE=address > /dev/null
  cmake --build build-asan -j "$JOBS" --target techs_tests
  techs_smoke_asan

  echo
  echo "== techs smoke: bicordsim lteu/tsch sim.threads 1 vs 8 =="
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target bicordsim
  techs_smoke_sim

  echo
  echo "OK: techs smoke green (ASan/UBSan + bitwise 1-vs-8)"
  exit 0
fi

# Failover smoke: the multi-grantor election under memory and race
# sanitizers. The ASan leg runs the whole failover family (election unit
# tests live in core_tests, the synthetic invariant traces and the 16-seed
# soak in fault_tests); the TSAN leg reruns the soak because the experiment
# runner dispatches trials across threads. The bicordsim leg exercises the
# shipped failover preset end to end with the invariant checker gating the
# exit code.
FAILOVER_FAULT_FILTER='InvariantElectionTest.*:FailoverSoakTest.*'

failover_smoke_asan() {
  ./build-asan/tests/core_tests --gtest_filter='GrantorElectionTest.*'
  ./build-asan/tests/fault_tests --gtest_filter="$FAILOVER_FAULT_FILTER"
}

failover_smoke_tsan() {
  ./build-tsan/tests/fault_tests --gtest_filter='FailoverSoakTest.*'
}

failover_smoke_sim() {
  echo "-- bicordsim --scenario failover (invariants gate exit)"
  ./build-asan/tools/bicordsim --scenario failover --seconds 6 > /dev/null
}

if [ "$MODE" = "failover" ]; then
  echo "== failover smoke: ASan + UBSan, election + soak =="
  cmake -B build-asan -S . -DBICORD_SANITIZE=address > /dev/null
  cmake --build build-asan -j "$JOBS" --target core_tests fault_tests bicordsim
  failover_smoke_asan

  echo
  echo "== failover smoke: TSAN, 16-seed soak =="
  cmake -B build-tsan -S . -DBICORD_SANITIZE=thread > /dev/null
  cmake --build build-tsan -j "$JOBS" --target fault_tests
  failover_smoke_tsan

  echo
  echo "== failover smoke: bicordsim failover preset =="
  failover_smoke_sim

  echo
  echo "OK: failover smoke green (ASan/UBSan + TSAN)"
  exit 0
fi

if [ "$MODE" = "chaos" ]; then
  echo "== chaos soak: ASan + UBSan, fault tests =="
  cmake -B build-asan -S . -DBICORD_SANITIZE=address > /dev/null
  cmake --build build-asan -j "$JOBS" --target fault_tests bicordsim
  ./build-asan/tests/fault_tests

  echo
  echo "== chaos soak: TSAN, parallel soak + runner tests =="
  cmake -B build-tsan -S . -DBICORD_SANITIZE=thread > /dev/null
  cmake --build build-tsan -j "$JOBS" --target fault_tests runner_tests
  ./build-tsan/tests/fault_tests --gtest_filter='ChaosSoakTest.*'
  ./build-tsan/tests/runner_tests

  echo
  echo "== chaos soak: bicordsim --fault-plan mixed (invariants gate exit) =="
  ./build-asan/tools/bicordsim --fault-plan mixed --seconds 8 --seed 7

  echo
  echo "OK: chaos soak green (ASan/UBSan + TSAN, seed 7)"
  exit 0
fi

echo "== plain build + tests =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [ "$MODE" = "fast" ]; then
  echo "OK (fast)"
  exit 0
fi

echo
echo "== static gates: clang-tidy + bicord_lint =="
scripts/lint.sh all

echo
echo "== dense smoke: spatial index vs brute force =="
dense_smoke

echo
echo "== parallel smoke: bicordsim dense1k sim.threads 1 vs 8 =="
parallel_smoke_sim

echo
echo "== techs smoke: bicordsim lteu/tsch sim.threads 1 vs 8 =="
techs_smoke_sim

echo
echo "== ThreadSanitizer: runner tests + parallel dispatch + failover soak =="
cmake -B build-tsan -S . -DBICORD_SANITIZE=thread > /dev/null
cmake --build build-tsan -j "$JOBS" --target runner_tests fault_tests sim_tests
./build-tsan/tests/runner_tests
parallel_smoke_tsan
failover_smoke_tsan

echo
echo "== ASan + UBSan: full suite =="
cmake -B build-asan -S . -DBICORD_SANITIZE=address > /dev/null
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo
echo "== failover smoke: bicordsim failover preset =="
failover_smoke_sim

echo
echo "OK: plain, lint, dense smoke, parallel smoke, techs smoke, TSAN (runner+parallel+failover), ASan/UBSan, failover all green"
