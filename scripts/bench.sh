#!/usr/bin/env bash
# Perf-regression harness around bench/bench_micro.
#
# Usage:  scripts/bench.sh [run|smoke|compare|refresh]
#   run     — full measured run (5 repetitions, medians); writes the flat
#             metric JSON to build/bench/BENCH_micro.json
#   smoke   — one fast pass, then machine-independent assertions only
#             (allocation-freedom of the event-queue hot path). This is what
#             `scripts/check.sh bench` runs: it is meaningful on any machine
#             because it never compares absolute times.
#   compare — full run, then fail if any benchmark's median real time
#             regressed by more than 15% against the committed baseline
#             BENCH_micro.json (absolute times: only meaningful on the same
#             machine/compiler that produced the baseline)
#   refresh — full run, then overwrite the committed baseline with it
#
# The JSON is deliberately flat — one `"benchmark.metric": value` line per
# metric — so this script needs nothing beyond awk.

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-run}"
JOBS="$(nproc 2>/dev/null || echo 2)"
BASELINE="BENCH_micro.json"
OUT="build/bench/BENCH_micro.json"
REGRESSION_PCT=15

build_bench() {
  cmake -B build -S . > /dev/null
  cmake --build build -j "$JOBS" --target bench_micro > /dev/null
}

full_run() {
  BICORD_BENCH_JSON="$PWD/$OUT" ./build/bench/bench_micro \
    --benchmark_min_time=0.4 \
    --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true
}

# Prints "key value" pairs from the flat metric JSON.
metrics() {
  awk -F'"' '/": / { val = $3; gsub(/[:, ]/, "", val); print $2, val }' "$1"
}

case "$MODE" in
  run)
    build_bench
    full_run
    echo
    echo "metrics: $OUT"
    ;;

  smoke)
    build_bench
    BICORD_BENCH_JSON="$PWD/$OUT" ./build/bench/bench_micro \
      --benchmark_min_time=0.05
    echo
    metrics "$OUT" | awk -v out="$OUT" '
      $1 == "BM_EventQueueScheduleAndPop.allocs_per_event"               { alloc = $2; seen++ }
      $1 == "BM_EventQueueScheduleAndPop.callback_heap_allocs_per_event" { cb = $2; seen++ }
      END {
        if (seen != 2) { print "FAIL: alloc counters missing from " out; exit 1 }
        if (alloc + 0 >= 0.001) {
          print "FAIL: event-queue hot path allocates (" alloc " allocs/event, want < 0.001)"
          exit 1
        }
        if (cb + 0 != 0) {
          print "FAIL: callback small-buffer overflowed to the heap (" cb " per event)"
          exit 1
        }
        print "OK: event-queue hot path is allocation-free (" alloc " allocs/event," \
              " 0 callback heap allocs)"
      }'
    ;;

  compare)
    [ -f "$BASELINE" ] || { echo "error: no committed baseline $BASELINE" >&2; exit 2; }
    build_bench
    full_run
    echo
    { metrics "$BASELINE" | sed 's/^/base /'; metrics "$OUT" | sed 's/^/cand /'; } |
      awk -v pct="$REGRESSION_PCT" '
        $2 ~ /\.real_ns_per_iter$/ && $1 == "base" { base[$2] = $3 }
        $2 ~ /\.real_ns_per_iter$/ && $1 == "cand" { cand[$2] = $3 }
        END {
          fail = 0
          for (k in base) {
            if (!(k in cand)) { printf "MISSING  %s (in baseline, not in run)\n", k; fail = 1; continue }
            ratio = cand[k] / base[k]
            verdict = ratio > 1 + pct / 100 ? "REGRESS" : "ok"
            printf "%-8s %-55s %10.1f -> %10.1f ns  (%+.1f%%)\n", \
                   verdict, k, base[k], cand[k], (ratio - 1) * 100
            if (verdict == "REGRESS") fail = 1
          }
          if (fail) { print "\nFAIL: regression beyond " pct "% against " ARGV[0]; exit 1 }
          print "\nOK: no benchmark regressed more than " pct "%"
        }'
    ;;

  refresh)
    build_bench
    full_run
    cp "$OUT" "$BASELINE"
    echo
    echo "baseline refreshed: $BASELINE"
    ;;

  *)
    echo "usage: scripts/bench.sh [run|smoke|compare|refresh]" >&2
    exit 2
    ;;
esac
