#!/usr/bin/env bash
# Static-correctness gate, two layers (DESIGN.md Sec. 10):
#
#   layer 1 — clang-tidy over the CMake compilation database, curated check
#             set in .clang-tidy. Findings are fingerprinted (path|check|
#             source-line text, line-number free) and compared against the
#             committed baseline scripts/clang_tidy_baseline.txt. Any NEW
#             finding fails; the baseline may only shrink (ratchet).
#   layer 2 — tools/bicord_lint.cpp, the project-rule linter (determinism,
#             callback lifetime, hygiene) with its own ratcheted baseline
#             scripts/bicord_lint_baseline.txt.
#
# clang-tidy/clang-format version floor: 14 (LLVM 14 is the oldest toolchain
# the curated check set was validated against). When the tools are absent the
# corresponding layer is SKIPPED with a notice — bicord_lint always runs, so
# the determinism/lifetime rules gate every environment. Set
# BICORD_REQUIRE_CLANG_TIDY=1 (CI) to turn a missing clang-tidy into an error.
#
# Usage: scripts/lint.sh [all|tidy|bicord|fast|format-check|refresh-baseline]
#   all              (default) tidy + bicord
#   tidy             clang-tidy layer only
#   bicord           bicord_lint layer only
#   fast             bicord_lint on CHANGED files only (vs HEAD, plus staged +
#                    untracked; BICORD_FORMAT_BASE widens the range) — the
#                    inner-loop mode behind `scripts/check.sh lint-fast`.
#                    Same exit-code contract as the full run; layering still
#                    sees the whole include graph (chains are resolved
#                    lazily), only the scan set shrinks.
#   format-check     clang-format --dry-run on CHANGED files only (vs HEAD,
#                    plus staged + untracked; never a mass reformat)
#   refresh-baseline [--rule NAME]
#                    rewrite both baselines from current findings; refuses
#                    to grow either one (the ratchet only goes down). With
#                    --rule NAME only that bicord_lint rule's baseline slice
#                    is rewritten (clang-tidy refresh is skipped): refreshing
#                    one rule can't quietly absorb regressions in another.
#
# Exit codes: 0 clean/skipped, 1 environment or usage error, 2 new findings,
#             3 ratchet violation.

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-all}"
JOBS="$(nproc 2>/dev/null || echo 2)"
TIDY_BASELINE=scripts/clang_tidy_baseline.txt
BICORD_BASELINE=scripts/bicord_lint_baseline.txt
LAYERING=scripts/layering.txt
MIN_LLVM_MAJOR=14
# Directories scanned by both layers. bicord_lint scopes its determinism and
# lifetime rules to src/ internally; hygiene rules apply everywhere.
LINT_PATHS=(src tools bench tests)

find_tool() {  # find_tool <base-name> -> echoes the newest acceptable binary
  local base="$1" cand ver major
  for cand in "$base" "$base"-20 "$base"-19 "$base"-18 "$base"-17 "$base"-16 \
              "$base"-15 "$base"-14; do
    if command -v "$cand" > /dev/null 2>&1; then
      ver="$("$cand" --version 2>/dev/null | grep -oE '[0-9]+\.[0-9]+(\.[0-9]+)?' | head -1)"
      major="${ver%%.*}"
      if [ -n "$major" ] && [ "$major" -ge "$MIN_LLVM_MAJOR" ]; then
        echo "$cand"
        return 0
      fi
    fi
  done
  return 1
}

ensure_compile_db() {
  if [ ! -f build/compile_commands.json ]; then
    echo "-- configuring build/ for compile_commands.json"
    cmake -B build -S . > /dev/null
  fi
  # Mirror to the repo root so clang-tidy -p . and editors both work.
  if [ ! -e compile_commands.json ]; then
    ln -sf build/compile_commands.json compile_commands.json
  fi
}

# Normalizes clang-tidy output lines "path:line:col: warning: msg [check]"
# into line-number-free fingerprints "relpath|check|trimmed source text".
tidy_fingerprints() {  # stdin: raw clang-tidy output; stdout: sorted fingerprints
  local repo
  repo="$(pwd)"
  # grep exits 1 on zero matches (the expected clean state) — don't let
  # pipefail turn that into a gate failure.
  { grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error): .* \[[^]]+\]$' || true; } \
    | while IFS= read -r finding; do
        local file line check text
        file="${finding%%:*}"
        line="$(echo "$finding" | cut -d: -f2)"
        check="$(echo "$finding" | sed -E 's/.*\[([^]]+)\]$/\1/')"
        file="${file#"$repo"/}"
        text="$(sed -n "${line}p" "$file" 2>/dev/null \
                  | sed 's/^[[:space:]]*//;s/[[:space:]]*$//')"
        echo "${file}|${check}|${text}"
      done | sort -u
}

read_baseline() {  # read_baseline <file> -> sorted non-comment lines
  [ -f "$1" ] && grep -vE '^\s*(#|$)' "$1" | sort -u || true
}

run_tidy() {  # run_tidy [refresh]
  # Export + mirror the compilation database even when clang-tidy is absent:
  # editors/clangd consume the root-level compile_commands.json too.
  ensure_compile_db
  local tidy
  if ! tidy="$(find_tool clang-tidy)"; then
    echo "-- clang-tidy >= ${MIN_LLVM_MAJOR} not found: SKIPPING layer 1" \
         "(bicord_lint still gates; set BICORD_REQUIRE_CLANG_TIDY=1 to fail here)"
    if [ "${BICORD_REQUIRE_CLANG_TIDY:-0}" = "1" ]; then
      return 1
    fi
    return 0
  fi
  echo "== layer 1: ${tidy} (curated checks, ratcheted baseline) =="
  local workdir
  workdir="$(mktemp -d "${TMPDIR:-/tmp}/bicord_tidy.XXXXXX")"
  git ls-files 'src/*.cpp' 'tools/*.cpp' 'bench/*.cpp' 'tests/*.cpp' \
    > "$workdir/files"
  # One clang-tidy process per TU, each with a private stdout/stderr pair:
  # parallel processes can't interleave mid-line (which would corrupt finding
  # lines past the fingerprint regex), and a TU where the tool itself fails
  # (bad flags, missing compile_commands entry, frontend error) is recorded
  # instead of silently contributing an empty findings file.
  # --warnings-as-errors=-* overrides the config's WarningsAsErrors so the
  # exit status means "tool/compile failure", never "has findings" — the
  # ratchet below is what gates findings.
  export TIDY_BIN="$tidy" TIDY_WORK="$workdir"
  xargs -r -P "$JOBS" -n 1 bash -c '
    out="$TIDY_WORK/$(printf "%s" "$1" | tr "/" "_")"
    "$TIDY_BIN" -p build --quiet --warnings-as-errors="-*" "$1" \
      > "$out.out" 2> "$out.err" || echo "$1" >> "$TIDY_WORK/failed"
  ' bash < "$workdir/files"
  if [ -s "$workdir/failed" ]; then
    echo "clang-tidy FAILED on $(wc -l < "$workdir/failed") file(s);" \
         "layer 1 cannot be trusted until this is fixed:"
    while IFS= read -r f; do
      echo "  $f"
      head -15 "$workdir/$(printf "%s" "$f" | tr "/" "_").err" | sed 's/^/    /'
    done < "$workdir/failed"
    rm -rf "$workdir"
    return 1
  fi
  local raw="$workdir/raw" cur="$workdir/cur"
  find "$workdir" -name '*.out' -exec cat {} + > "$raw"
  tidy_fingerprints < "$raw" > "$cur"
  local base_tmp="$workdir/base"
  read_baseline "$TIDY_BASELINE" > "$base_tmp"
  local fresh stale
  fresh="$(comm -23 "$cur" "$base_tmp")"
  stale="$(comm -13 "$cur" "$base_tmp")"
  if [ "${1:-}" = "refresh" ]; then
    if [ -n "$fresh" ]; then
      echo "ratchet: refusing to grow $TIDY_BASELINE — fix these instead:"
      echo "$fresh" | sed 's/^/  /'
      rm -rf "$workdir"
      return 3
    fi
    {
      echo "# clang-tidy suppression baseline — may only shrink (ratchet)."
      echo "# Fingerprints: relpath|check|trimmed source line."
      cat "$cur"
    } > "$TIDY_BASELINE"
    echo "baseline refreshed: $(wc -l < "$cur") entr(y/ies)"
  else
    if [ -n "$stale" ]; then
      echo "note: $(echo "$stale" | wc -l) baseline entries no longer fire —" \
           "run scripts/lint.sh refresh-baseline to ratchet down"
    fi
    if [ -n "$fresh" ]; then
      echo "NEW clang-tidy findings (not in $TIDY_BASELINE):"
      grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error): ' "$raw" | sed 's/^/  /'
      rm -rf "$workdir"
      return 2
    fi
    echo "clang-tidy clean ($(wc -l < "$cur") baselined)"
  fi
  rm -rf "$workdir"
}

build_bicord_lint() {
  if [ ! -x build/tools/bicord_lint ] \
     || [ tools/bicord_lint.cpp -nt build/tools/bicord_lint ]; then
    cmake -B build -S . > /dev/null
    cmake --build build -j "$JOBS" --target bicord_lint > /dev/null
  fi
}

run_bicord() {  # run_bicord [refresh [rule]]
  build_bicord_lint
  echo "== layer 2: bicord_lint (determinism / lifetime / layering / hygiene) =="
  if [ "${1:-}" = "refresh" ]; then
    local scope=()
    [ -n "${2:-}" ] && scope=(--rule "$2")
    ./build/tools/bicord_lint --baseline "$BICORD_BASELINE" --write-baseline \
      "${scope[@]}" --layering "$LAYERING" --src-root src "${LINT_PATHS[@]}"
  else
    ./build/tools/bicord_lint --baseline "$BICORD_BASELINE" \
      --layering "$LAYERING" --src-root src "${LINT_PATHS[@]}"
  fi
}

changed_cpp_files() {
  # Working tree + index vs HEAD, plus untracked; BICORD_FORMAT_BASE widens
  # the range for CI (same selection as format-check).
  (git diff --name-only HEAD --
   git diff --name-only --cached
   git ls-files --others --exclude-standard
   if [ -n "${BICORD_FORMAT_BASE:-}" ]; then
     git diff --name-only "${BICORD_FORMAT_BASE}...HEAD"
   fi) \
    | sort -u | grep -E '\.(cpp|hpp|h)$' \
    | while IFS= read -r f; do [ -f "$f" ] && echo "$f"; done || true
}

run_bicord_fast() {
  build_bicord_lint
  local files=()
  while IFS= read -r f; do files+=("$f"); done < <(changed_cpp_files)
  if [ "${#files[@]}" -eq 0 ]; then
    echo "lint-fast: no changed C++ files"
    return 0
  fi
  echo "== lint-fast: bicord_lint on ${#files[@]} changed file(s) =="
  # --json gives the machine-readable finding list; surface the per-rule
  # counts, then re-print the human rendering only when something fired.
  # (No xargs: it would replace the linter's 2/3 exit contract with 123.)
  local json rc=0
  json="$(./build/tools/bicord_lint --baseline "$BICORD_BASELINE" \
            --layering "$LAYERING" --src-root src --json "${files[@]}")" \
    || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "$json" | grep -oE '"rule": "[a-z-]+"' | sort | uniq -c | sort -rn \
      | sed 's/"rule": //; s/"//g; s/^/  /'
    ./build/tools/bicord_lint --baseline "$BICORD_BASELINE" \
      --layering "$LAYERING" --src-root src "${files[@]}" || rc=$?
  else
    echo "lint-fast: clean"
  fi
  return "$rc"
}

run_format_check() {
  local fmt
  if ! fmt="$(find_tool clang-format)"; then
    echo "-- clang-format >= ${MIN_LLVM_MAJOR} not found: SKIPPING format-check"
    return 0
  fi
  # Changed files only: working tree + index vs HEAD, plus untracked. An
  # explicit base (e.g. BICORD_FORMAT_BASE=origin/main) widens the range for CI.
  local files
  files="$( (git diff --name-only HEAD --
             git diff --name-only --cached
             git ls-files --others --exclude-standard
             if [ -n "${BICORD_FORMAT_BASE:-}" ]; then
               git diff --name-only "${BICORD_FORMAT_BASE}...HEAD"
             fi) \
            | sort -u | grep -E '\.(cpp|hpp|h)$' || true)"
  if [ -z "$files" ]; then
    echo "format-check: no changed C++ files"
    return 0
  fi
  echo "== format-check (${fmt}, changed files only) =="
  echo "$files" | xargs "$fmt" --dry-run -Werror
  echo "format-check: clean"
}

case "$MODE" in
  all)
    run_tidy
    run_bicord
    ;;
  tidy) run_tidy ;;
  bicord) run_bicord ;;
  fast) run_bicord_fast ;;
  format-check) run_format_check ;;
  refresh-baseline)
    RULE=""
    if [ "${2:-}" = "--rule" ]; then
      RULE="${3:-}"
      if [ -z "$RULE" ]; then
        echo "usage: scripts/lint.sh refresh-baseline [--rule NAME]" >&2
        exit 1
      fi
    elif [ -n "${2:-}" ]; then
      echo "usage: scripts/lint.sh refresh-baseline [--rule NAME]" >&2
      exit 1
    fi
    if [ -n "$RULE" ]; then
      echo "-- --rule ${RULE}: bicord_lint slice only (clang-tidy refresh skipped)"
    else
      run_tidy refresh
    fi
    run_bicord refresh "$RULE"
    ;;
  *)
    echo "usage: scripts/lint.sh [all|tidy|bicord|fast|format-check|refresh-baseline [--rule NAME]]" >&2
    exit 1
    ;;
esac
