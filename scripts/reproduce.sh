#!/usr/bin/env bash
# Reproduce everything: build, run the test suite, and regenerate every
# table/figure of the paper (plus the motivation and extension experiments).
#
# Usage:  scripts/reproduce.sh [paper]
#   default — reduced-scale benches (seconds per bench)
#   paper   — paper-scale workloads (600 trials, 1000 packets, 30 reps)

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-default}"

cmake -B build -G Ninja
cmake --build build

echo "== tests =="
ctest --test-dir build --output-on-failure

echo "== benches ($SCALE scale) =="
run() {
  local bench="$1"
  shift
  echo
  "./build/bench/$bench" "$@"
}

if [ "$SCALE" = "paper" ]; then
  run bench_table1_2_signaling 600
  run bench_fig7_learning_convergence 10
  run bench_fig8_iterations 30
  run bench_fig9_whitespace_length 30
  run bench_fig10_comparison 1000
  run bench_fig11_parameters
  run bench_fig12_mobility
  run bench_fig13_priority
  run bench_cti_accuracy 200
  run bench_energy
  run bench_ablation_detector 600
  run bench_ablation_estimator
  run bench_ablation_expiry
  run bench_motivation_ctc 100
  run bench_ext_multinode
  run bench_ext_ble 20
else
  for b in build/bench/bench_*; do
    name="$(basename "$b")"
    [ "$name" = bench_micro ] && continue
    echo
    "$b"
  done
fi

echo
./build/bench/bench_micro --benchmark_min_time=0.05
