file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_parameters.dir/bench_fig11_parameters.cpp.o"
  "CMakeFiles/bench_fig11_parameters.dir/bench_fig11_parameters.cpp.o.d"
  "bench_fig11_parameters"
  "bench_fig11_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
