# Empty compiler generated dependencies file for bench_fig9_whitespace_length.
# This may be replaced when dependencies are built.
