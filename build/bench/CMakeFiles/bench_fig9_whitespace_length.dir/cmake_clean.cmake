file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_whitespace_length.dir/bench_fig9_whitespace_length.cpp.o"
  "CMakeFiles/bench_fig9_whitespace_length.dir/bench_fig9_whitespace_length.cpp.o.d"
  "bench_fig9_whitespace_length"
  "bench_fig9_whitespace_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_whitespace_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
