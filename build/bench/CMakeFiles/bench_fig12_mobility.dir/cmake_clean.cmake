file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mobility.dir/bench_fig12_mobility.cpp.o"
  "CMakeFiles/bench_fig12_mobility.dir/bench_fig12_mobility.cpp.o.d"
  "bench_fig12_mobility"
  "bench_fig12_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
