# Empty dependencies file for bench_fig12_mobility.
# This may be replaced when dependencies are built.
