file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_expiry.dir/bench_ablation_expiry.cpp.o"
  "CMakeFiles/bench_ablation_expiry.dir/bench_ablation_expiry.cpp.o.d"
  "bench_ablation_expiry"
  "bench_ablation_expiry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_expiry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
