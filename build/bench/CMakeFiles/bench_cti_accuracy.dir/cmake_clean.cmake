file(REMOVE_RECURSE
  "CMakeFiles/bench_cti_accuracy.dir/bench_cti_accuracy.cpp.o"
  "CMakeFiles/bench_cti_accuracy.dir/bench_cti_accuracy.cpp.o.d"
  "bench_cti_accuracy"
  "bench_cti_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cti_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
