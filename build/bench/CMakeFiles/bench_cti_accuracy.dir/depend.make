# Empty dependencies file for bench_cti_accuracy.
# This may be replaced when dependencies are built.
