file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_iterations.dir/bench_fig8_iterations.cpp.o"
  "CMakeFiles/bench_fig8_iterations.dir/bench_fig8_iterations.cpp.o.d"
  "bench_fig8_iterations"
  "bench_fig8_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
