file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_priority.dir/bench_fig13_priority.cpp.o"
  "CMakeFiles/bench_fig13_priority.dir/bench_fig13_priority.cpp.o.d"
  "bench_fig13_priority"
  "bench_fig13_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
