file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_ctc.dir/bench_motivation_ctc.cpp.o"
  "CMakeFiles/bench_motivation_ctc.dir/bench_motivation_ctc.cpp.o.d"
  "bench_motivation_ctc"
  "bench_motivation_ctc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_ctc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
