# Empty compiler generated dependencies file for bench_motivation_ctc.
# This may be replaced when dependencies are built.
