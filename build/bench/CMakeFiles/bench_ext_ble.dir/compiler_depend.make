# Empty compiler generated dependencies file for bench_ext_ble.
# This may be replaced when dependencies are built.
