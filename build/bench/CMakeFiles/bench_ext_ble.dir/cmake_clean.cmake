file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ble.dir/bench_ext_ble.cpp.o"
  "CMakeFiles/bench_ext_ble.dir/bench_ext_ble.cpp.o.d"
  "bench_ext_ble"
  "bench_ext_ble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
