
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_comparison.cpp" "bench/CMakeFiles/bench_fig10_comparison.dir/bench_fig10_comparison.cpp.o" "gcc" "bench/CMakeFiles/bench_fig10_comparison.dir/bench_fig10_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coex/CMakeFiles/bicord_coex.dir/DependInfo.cmake"
  "/root/repo/build/src/interferers/CMakeFiles/bicord_interferers.dir/DependInfo.cmake"
  "/root/repo/build/src/ctc/CMakeFiles/bicord_ctc.dir/DependInfo.cmake"
  "/root/repo/build/src/ble/CMakeFiles/bicord_ble.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bicord_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/bicord_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/zigbee/CMakeFiles/bicord_zigbee.dir/DependInfo.cmake"
  "/root/repo/build/src/csi/CMakeFiles/bicord_csi.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/bicord_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bicord_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bicord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bicord_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
