file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_2_signaling.dir/bench_table1_2_signaling.cpp.o"
  "CMakeFiles/bench_table1_2_signaling.dir/bench_table1_2_signaling.cpp.o.d"
  "bench_table1_2_signaling"
  "bench_table1_2_signaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_2_signaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
