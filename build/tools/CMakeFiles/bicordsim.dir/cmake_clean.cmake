file(REMOVE_RECURSE
  "CMakeFiles/bicordsim.dir/bicordsim.cpp.o"
  "CMakeFiles/bicordsim.dir/bicordsim.cpp.o.d"
  "bicordsim"
  "bicordsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicordsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
