# Empty compiler generated dependencies file for bicordsim.
# This may be replaced when dependencies are built.
