# Empty dependencies file for signaling_demo.
# This may be replaced when dependencies are built.
