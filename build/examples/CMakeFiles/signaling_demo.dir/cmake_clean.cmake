file(REMOVE_RECURSE
  "CMakeFiles/signaling_demo.dir/signaling_demo.cpp.o"
  "CMakeFiles/signaling_demo.dir/signaling_demo.cpp.o.d"
  "signaling_demo"
  "signaling_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signaling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
