# Empty dependencies file for industrial_monitoring.
# This may be replaced when dependencies are built.
