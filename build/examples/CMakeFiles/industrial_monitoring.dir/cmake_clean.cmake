file(REMOVE_RECURSE
  "CMakeFiles/industrial_monitoring.dir/industrial_monitoring.cpp.o"
  "CMakeFiles/industrial_monitoring.dir/industrial_monitoring.cpp.o.d"
  "industrial_monitoring"
  "industrial_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/industrial_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
