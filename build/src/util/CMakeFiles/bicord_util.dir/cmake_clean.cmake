file(REMOVE_RECURSE
  "CMakeFiles/bicord_util.dir/flags.cpp.o"
  "CMakeFiles/bicord_util.dir/flags.cpp.o.d"
  "CMakeFiles/bicord_util.dir/logging.cpp.o"
  "CMakeFiles/bicord_util.dir/logging.cpp.o.d"
  "CMakeFiles/bicord_util.dir/rng.cpp.o"
  "CMakeFiles/bicord_util.dir/rng.cpp.o.d"
  "CMakeFiles/bicord_util.dir/stats.cpp.o"
  "CMakeFiles/bicord_util.dir/stats.cpp.o.d"
  "CMakeFiles/bicord_util.dir/table.cpp.o"
  "CMakeFiles/bicord_util.dir/table.cpp.o.d"
  "CMakeFiles/bicord_util.dir/time.cpp.o"
  "CMakeFiles/bicord_util.dir/time.cpp.o.d"
  "libbicord_util.a"
  "libbicord_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
