file(REMOVE_RECURSE
  "libbicord_util.a"
)
