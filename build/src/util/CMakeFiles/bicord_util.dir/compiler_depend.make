# Empty compiler generated dependencies file for bicord_util.
# This may be replaced when dependencies are built.
