# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("phy")
subdirs("wifi")
subdirs("zigbee")
subdirs("csi")
subdirs("detect")
subdirs("interferers")
subdirs("core")
subdirs("coex")
subdirs("ctc")
subdirs("ble")
