
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interferers/bluetooth.cpp" "src/interferers/CMakeFiles/bicord_interferers.dir/bluetooth.cpp.o" "gcc" "src/interferers/CMakeFiles/bicord_interferers.dir/bluetooth.cpp.o.d"
  "/root/repo/src/interferers/microwave.cpp" "src/interferers/CMakeFiles/bicord_interferers.dir/microwave.cpp.o" "gcc" "src/interferers/CMakeFiles/bicord_interferers.dir/microwave.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bicord_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bicord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bicord_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
