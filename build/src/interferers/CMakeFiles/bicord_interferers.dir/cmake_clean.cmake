file(REMOVE_RECURSE
  "CMakeFiles/bicord_interferers.dir/bluetooth.cpp.o"
  "CMakeFiles/bicord_interferers.dir/bluetooth.cpp.o.d"
  "CMakeFiles/bicord_interferers.dir/microwave.cpp.o"
  "CMakeFiles/bicord_interferers.dir/microwave.cpp.o.d"
  "libbicord_interferers.a"
  "libbicord_interferers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_interferers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
