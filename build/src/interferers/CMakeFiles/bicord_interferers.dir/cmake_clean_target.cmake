file(REMOVE_RECURSE
  "libbicord_interferers.a"
)
