# Empty dependencies file for bicord_interferers.
# This may be replaced when dependencies are built.
