file(REMOVE_RECURSE
  "CMakeFiles/bicord_detect.dir/classifier.cpp.o"
  "CMakeFiles/bicord_detect.dir/classifier.cpp.o.d"
  "CMakeFiles/bicord_detect.dir/decision_tree.cpp.o"
  "CMakeFiles/bicord_detect.dir/decision_tree.cpp.o.d"
  "CMakeFiles/bicord_detect.dir/features.cpp.o"
  "CMakeFiles/bicord_detect.dir/features.cpp.o.d"
  "CMakeFiles/bicord_detect.dir/kmeans.cpp.o"
  "CMakeFiles/bicord_detect.dir/kmeans.cpp.o.d"
  "CMakeFiles/bicord_detect.dir/rssi_sampler.cpp.o"
  "CMakeFiles/bicord_detect.dir/rssi_sampler.cpp.o.d"
  "libbicord_detect.a"
  "libbicord_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
