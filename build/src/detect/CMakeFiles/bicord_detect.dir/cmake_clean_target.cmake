file(REMOVE_RECURSE
  "libbicord_detect.a"
)
