
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/classifier.cpp" "src/detect/CMakeFiles/bicord_detect.dir/classifier.cpp.o" "gcc" "src/detect/CMakeFiles/bicord_detect.dir/classifier.cpp.o.d"
  "/root/repo/src/detect/decision_tree.cpp" "src/detect/CMakeFiles/bicord_detect.dir/decision_tree.cpp.o" "gcc" "src/detect/CMakeFiles/bicord_detect.dir/decision_tree.cpp.o.d"
  "/root/repo/src/detect/features.cpp" "src/detect/CMakeFiles/bicord_detect.dir/features.cpp.o" "gcc" "src/detect/CMakeFiles/bicord_detect.dir/features.cpp.o.d"
  "/root/repo/src/detect/kmeans.cpp" "src/detect/CMakeFiles/bicord_detect.dir/kmeans.cpp.o" "gcc" "src/detect/CMakeFiles/bicord_detect.dir/kmeans.cpp.o.d"
  "/root/repo/src/detect/rssi_sampler.cpp" "src/detect/CMakeFiles/bicord_detect.dir/rssi_sampler.cpp.o" "gcc" "src/detect/CMakeFiles/bicord_detect.dir/rssi_sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bicord_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bicord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bicord_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
