# Empty dependencies file for bicord_detect.
# This may be replaced when dependencies are built.
