# Empty dependencies file for bicord_zigbee.
# This may be replaced when dependencies are built.
