file(REMOVE_RECURSE
  "libbicord_zigbee.a"
)
