file(REMOVE_RECURSE
  "CMakeFiles/bicord_zigbee.dir/duty_cycle.cpp.o"
  "CMakeFiles/bicord_zigbee.dir/duty_cycle.cpp.o.d"
  "CMakeFiles/bicord_zigbee.dir/energy.cpp.o"
  "CMakeFiles/bicord_zigbee.dir/energy.cpp.o.d"
  "CMakeFiles/bicord_zigbee.dir/traffic.cpp.o"
  "CMakeFiles/bicord_zigbee.dir/traffic.cpp.o.d"
  "CMakeFiles/bicord_zigbee.dir/zigbee_mac.cpp.o"
  "CMakeFiles/bicord_zigbee.dir/zigbee_mac.cpp.o.d"
  "libbicord_zigbee.a"
  "libbicord_zigbee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_zigbee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
