
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coex/cti_training.cpp" "src/coex/CMakeFiles/bicord_coex.dir/cti_training.cpp.o" "gcc" "src/coex/CMakeFiles/bicord_coex.dir/cti_training.cpp.o.d"
  "/root/repo/src/coex/experiment.cpp" "src/coex/CMakeFiles/bicord_coex.dir/experiment.cpp.o" "gcc" "src/coex/CMakeFiles/bicord_coex.dir/experiment.cpp.o.d"
  "/root/repo/src/coex/metrics.cpp" "src/coex/CMakeFiles/bicord_coex.dir/metrics.cpp.o" "gcc" "src/coex/CMakeFiles/bicord_coex.dir/metrics.cpp.o.d"
  "/root/repo/src/coex/scenario.cpp" "src/coex/CMakeFiles/bicord_coex.dir/scenario.cpp.o" "gcc" "src/coex/CMakeFiles/bicord_coex.dir/scenario.cpp.o.d"
  "/root/repo/src/coex/signaling_experiment.cpp" "src/coex/CMakeFiles/bicord_coex.dir/signaling_experiment.cpp.o" "gcc" "src/coex/CMakeFiles/bicord_coex.dir/signaling_experiment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bicord_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bicord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bicord_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/bicord_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/zigbee/CMakeFiles/bicord_zigbee.dir/DependInfo.cmake"
  "/root/repo/build/src/csi/CMakeFiles/bicord_csi.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/bicord_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/interferers/CMakeFiles/bicord_interferers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bicord_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
