file(REMOVE_RECURSE
  "libbicord_coex.a"
)
