# Empty dependencies file for bicord_coex.
# This may be replaced when dependencies are built.
