file(REMOVE_RECURSE
  "CMakeFiles/bicord_coex.dir/cti_training.cpp.o"
  "CMakeFiles/bicord_coex.dir/cti_training.cpp.o.d"
  "CMakeFiles/bicord_coex.dir/experiment.cpp.o"
  "CMakeFiles/bicord_coex.dir/experiment.cpp.o.d"
  "CMakeFiles/bicord_coex.dir/metrics.cpp.o"
  "CMakeFiles/bicord_coex.dir/metrics.cpp.o.d"
  "CMakeFiles/bicord_coex.dir/scenario.cpp.o"
  "CMakeFiles/bicord_coex.dir/scenario.cpp.o.d"
  "CMakeFiles/bicord_coex.dir/signaling_experiment.cpp.o"
  "CMakeFiles/bicord_coex.dir/signaling_experiment.cpp.o.d"
  "libbicord_coex.a"
  "libbicord_coex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_coex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
