file(REMOVE_RECURSE
  "CMakeFiles/bicord_phy.dir/medium.cpp.o"
  "CMakeFiles/bicord_phy.dir/medium.cpp.o.d"
  "CMakeFiles/bicord_phy.dir/path_loss.cpp.o"
  "CMakeFiles/bicord_phy.dir/path_loss.cpp.o.d"
  "CMakeFiles/bicord_phy.dir/radio.cpp.o"
  "CMakeFiles/bicord_phy.dir/radio.cpp.o.d"
  "CMakeFiles/bicord_phy.dir/spectrum.cpp.o"
  "CMakeFiles/bicord_phy.dir/spectrum.cpp.o.d"
  "CMakeFiles/bicord_phy.dir/tracer.cpp.o"
  "CMakeFiles/bicord_phy.dir/tracer.cpp.o.d"
  "libbicord_phy.a"
  "libbicord_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
