file(REMOVE_RECURSE
  "libbicord_phy.a"
)
