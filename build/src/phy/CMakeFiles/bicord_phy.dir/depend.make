# Empty dependencies file for bicord_phy.
# This may be replaced when dependencies are built.
