file(REMOVE_RECURSE
  "libbicord_ble.a"
)
