# Empty dependencies file for bicord_ble.
# This may be replaced when dependencies are built.
