file(REMOVE_RECURSE
  "CMakeFiles/bicord_ble.dir/ble_bicord.cpp.o"
  "CMakeFiles/bicord_ble.dir/ble_bicord.cpp.o.d"
  "CMakeFiles/bicord_ble.dir/ble_link.cpp.o"
  "CMakeFiles/bicord_ble.dir/ble_link.cpp.o.d"
  "CMakeFiles/bicord_ble.dir/ble_zigbee_agent.cpp.o"
  "CMakeFiles/bicord_ble.dir/ble_zigbee_agent.cpp.o.d"
  "libbicord_ble.a"
  "libbicord_ble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_ble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
