file(REMOVE_RECURSE
  "CMakeFiles/bicord_ctc.dir/packet_level.cpp.o"
  "CMakeFiles/bicord_ctc.dir/packet_level.cpp.o.d"
  "libbicord_ctc.a"
  "libbicord_ctc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_ctc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
