# Empty compiler generated dependencies file for bicord_ctc.
# This may be replaced when dependencies are built.
