file(REMOVE_RECURSE
  "libbicord_ctc.a"
)
