file(REMOVE_RECURSE
  "libbicord_wifi.a"
)
