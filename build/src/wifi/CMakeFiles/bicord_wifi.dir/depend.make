# Empty dependencies file for bicord_wifi.
# This may be replaced when dependencies are built.
