
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wifi/traffic.cpp" "src/wifi/CMakeFiles/bicord_wifi.dir/traffic.cpp.o" "gcc" "src/wifi/CMakeFiles/bicord_wifi.dir/traffic.cpp.o.d"
  "/root/repo/src/wifi/wifi_mac.cpp" "src/wifi/CMakeFiles/bicord_wifi.dir/wifi_mac.cpp.o" "gcc" "src/wifi/CMakeFiles/bicord_wifi.dir/wifi_mac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bicord_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bicord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bicord_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
