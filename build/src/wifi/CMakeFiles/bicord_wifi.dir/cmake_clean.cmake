file(REMOVE_RECURSE
  "CMakeFiles/bicord_wifi.dir/traffic.cpp.o"
  "CMakeFiles/bicord_wifi.dir/traffic.cpp.o.d"
  "CMakeFiles/bicord_wifi.dir/wifi_mac.cpp.o"
  "CMakeFiles/bicord_wifi.dir/wifi_mac.cpp.o.d"
  "libbicord_wifi.a"
  "libbicord_wifi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_wifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
