# Empty dependencies file for bicord_core.
# This may be replaced when dependencies are built.
