file(REMOVE_RECURSE
  "CMakeFiles/bicord_core.dir/bicord_wifi.cpp.o"
  "CMakeFiles/bicord_core.dir/bicord_wifi.cpp.o.d"
  "CMakeFiles/bicord_core.dir/bicord_zigbee.cpp.o"
  "CMakeFiles/bicord_core.dir/bicord_zigbee.cpp.o.d"
  "CMakeFiles/bicord_core.dir/ecc.cpp.o"
  "CMakeFiles/bicord_core.dir/ecc.cpp.o.d"
  "CMakeFiles/bicord_core.dir/whitespace.cpp.o"
  "CMakeFiles/bicord_core.dir/whitespace.cpp.o.d"
  "CMakeFiles/bicord_core.dir/zigbee_agent.cpp.o"
  "CMakeFiles/bicord_core.dir/zigbee_agent.cpp.o.d"
  "libbicord_core.a"
  "libbicord_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
