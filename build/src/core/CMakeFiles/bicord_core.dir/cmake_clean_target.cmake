file(REMOVE_RECURSE
  "libbicord_core.a"
)
