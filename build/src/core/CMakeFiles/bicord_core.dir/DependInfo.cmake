
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bicord_wifi.cpp" "src/core/CMakeFiles/bicord_core.dir/bicord_wifi.cpp.o" "gcc" "src/core/CMakeFiles/bicord_core.dir/bicord_wifi.cpp.o.d"
  "/root/repo/src/core/bicord_zigbee.cpp" "src/core/CMakeFiles/bicord_core.dir/bicord_zigbee.cpp.o" "gcc" "src/core/CMakeFiles/bicord_core.dir/bicord_zigbee.cpp.o.d"
  "/root/repo/src/core/ecc.cpp" "src/core/CMakeFiles/bicord_core.dir/ecc.cpp.o" "gcc" "src/core/CMakeFiles/bicord_core.dir/ecc.cpp.o.d"
  "/root/repo/src/core/whitespace.cpp" "src/core/CMakeFiles/bicord_core.dir/whitespace.cpp.o" "gcc" "src/core/CMakeFiles/bicord_core.dir/whitespace.cpp.o.d"
  "/root/repo/src/core/zigbee_agent.cpp" "src/core/CMakeFiles/bicord_core.dir/zigbee_agent.cpp.o" "gcc" "src/core/CMakeFiles/bicord_core.dir/zigbee_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bicord_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bicord_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/bicord_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/wifi/CMakeFiles/bicord_wifi.dir/DependInfo.cmake"
  "/root/repo/build/src/zigbee/CMakeFiles/bicord_zigbee.dir/DependInfo.cmake"
  "/root/repo/build/src/csi/CMakeFiles/bicord_csi.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/bicord_detect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
