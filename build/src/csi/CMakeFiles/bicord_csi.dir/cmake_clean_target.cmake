file(REMOVE_RECURSE
  "libbicord_csi.a"
)
