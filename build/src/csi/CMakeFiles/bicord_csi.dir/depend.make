# Empty dependencies file for bicord_csi.
# This may be replaced when dependencies are built.
