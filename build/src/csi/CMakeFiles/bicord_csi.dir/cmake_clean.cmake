file(REMOVE_RECURSE
  "CMakeFiles/bicord_csi.dir/csi_detector.cpp.o"
  "CMakeFiles/bicord_csi.dir/csi_detector.cpp.o.d"
  "CMakeFiles/bicord_csi.dir/csi_model.cpp.o"
  "CMakeFiles/bicord_csi.dir/csi_model.cpp.o.d"
  "libbicord_csi.a"
  "libbicord_csi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_csi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
