file(REMOVE_RECURSE
  "libbicord_sim.a"
)
