file(REMOVE_RECURSE
  "CMakeFiles/bicord_sim.dir/event_queue.cpp.o"
  "CMakeFiles/bicord_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/bicord_sim.dir/simulator.cpp.o"
  "CMakeFiles/bicord_sim.dir/simulator.cpp.o.d"
  "libbicord_sim.a"
  "libbicord_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bicord_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
