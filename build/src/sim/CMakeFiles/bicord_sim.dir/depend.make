# Empty dependencies file for bicord_sim.
# This may be replaced when dependencies are built.
