# Empty compiler generated dependencies file for csi_detect_tests.
# This may be replaced when dependencies are built.
