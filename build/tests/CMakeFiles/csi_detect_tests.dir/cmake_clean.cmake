file(REMOVE_RECURSE
  "CMakeFiles/csi_detect_tests.dir/csi/csi_detector_test.cpp.o"
  "CMakeFiles/csi_detect_tests.dir/csi/csi_detector_test.cpp.o.d"
  "CMakeFiles/csi_detect_tests.dir/csi/csi_model_test.cpp.o"
  "CMakeFiles/csi_detect_tests.dir/csi/csi_model_test.cpp.o.d"
  "CMakeFiles/csi_detect_tests.dir/detect/decision_tree_test.cpp.o"
  "CMakeFiles/csi_detect_tests.dir/detect/decision_tree_test.cpp.o.d"
  "CMakeFiles/csi_detect_tests.dir/detect/features_test.cpp.o"
  "CMakeFiles/csi_detect_tests.dir/detect/features_test.cpp.o.d"
  "CMakeFiles/csi_detect_tests.dir/detect/interferers_test.cpp.o"
  "CMakeFiles/csi_detect_tests.dir/detect/interferers_test.cpp.o.d"
  "CMakeFiles/csi_detect_tests.dir/detect/kmeans_test.cpp.o"
  "CMakeFiles/csi_detect_tests.dir/detect/kmeans_test.cpp.o.d"
  "CMakeFiles/csi_detect_tests.dir/detect/rssi_sampler_test.cpp.o"
  "CMakeFiles/csi_detect_tests.dir/detect/rssi_sampler_test.cpp.o.d"
  "csi_detect_tests"
  "csi_detect_tests.pdb"
  "csi_detect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_detect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
