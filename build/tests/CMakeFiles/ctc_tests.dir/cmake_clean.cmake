file(REMOVE_RECURSE
  "CMakeFiles/ctc_tests.dir/ctc/packet_level_test.cpp.o"
  "CMakeFiles/ctc_tests.dir/ctc/packet_level_test.cpp.o.d"
  "ctc_tests"
  "ctc_tests.pdb"
  "ctc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
