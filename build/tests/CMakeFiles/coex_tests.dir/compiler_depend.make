# Empty compiler generated dependencies file for coex_tests.
# This may be replaced when dependencies are built.
