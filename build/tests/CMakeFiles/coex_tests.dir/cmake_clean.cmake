file(REMOVE_RECURSE
  "CMakeFiles/coex_tests.dir/coex/cti_test.cpp.o"
  "CMakeFiles/coex_tests.dir/coex/cti_test.cpp.o.d"
  "CMakeFiles/coex_tests.dir/coex/experiment_test.cpp.o"
  "CMakeFiles/coex_tests.dir/coex/experiment_test.cpp.o.d"
  "CMakeFiles/coex_tests.dir/coex/invariants_test.cpp.o"
  "CMakeFiles/coex_tests.dir/coex/invariants_test.cpp.o.d"
  "CMakeFiles/coex_tests.dir/coex/multinode_test.cpp.o"
  "CMakeFiles/coex_tests.dir/coex/multinode_test.cpp.o.d"
  "CMakeFiles/coex_tests.dir/coex/scenario_test.cpp.o"
  "CMakeFiles/coex_tests.dir/coex/scenario_test.cpp.o.d"
  "CMakeFiles/coex_tests.dir/coex/signaling_experiment_test.cpp.o"
  "CMakeFiles/coex_tests.dir/coex/signaling_experiment_test.cpp.o.d"
  "coex_tests"
  "coex_tests.pdb"
  "coex_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coex_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
