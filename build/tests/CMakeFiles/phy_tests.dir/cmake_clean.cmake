file(REMOVE_RECURSE
  "CMakeFiles/phy_tests.dir/phy/medium_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/medium_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/path_loss_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/path_loss_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/radio_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/radio_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/spectrum_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/spectrum_test.cpp.o.d"
  "CMakeFiles/phy_tests.dir/phy/tracer_test.cpp.o"
  "CMakeFiles/phy_tests.dir/phy/tracer_test.cpp.o.d"
  "phy_tests"
  "phy_tests.pdb"
  "phy_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phy_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
