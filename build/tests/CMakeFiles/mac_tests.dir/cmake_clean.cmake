file(REMOVE_RECURSE
  "CMakeFiles/mac_tests.dir/mac/duty_cycle_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/duty_cycle_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/energy_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/energy_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/wifi_mac_edge_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/wifi_mac_edge_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/wifi_mac_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/wifi_mac_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/wifi_phy_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/wifi_phy_test.cpp.o.d"
  "CMakeFiles/mac_tests.dir/mac/zigbee_mac_test.cpp.o"
  "CMakeFiles/mac_tests.dir/mac/zigbee_mac_test.cpp.o.d"
  "mac_tests"
  "mac_tests.pdb"
  "mac_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
