file(REMOVE_RECURSE
  "CMakeFiles/ble_tests.dir/ble/ble_test.cpp.o"
  "CMakeFiles/ble_tests.dir/ble/ble_test.cpp.o.d"
  "ble_tests"
  "ble_tests.pdb"
  "ble_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ble_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
