# Empty dependencies file for ble_tests.
# This may be replaced when dependencies are built.
