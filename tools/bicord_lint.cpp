// bicord-lint: the project-rule linter clang-tidy cannot replace.
//
// Encodes BiCord-specific static rules — the determinism contract
// (DESIGN.md Sec. 7) and the callback-lifetime lessons of the PR-3
// EventQueue use-after-free — as token/regex checks over the source tree.
// It is deliberately not a real C++ parser: every rule is chosen so that a
// comment/string-stripped line scan decides it with near-zero false
// positives on this codebase, and every rule can be waived per line with
//
//     // bicord-lint: allow(<rule>)
//
// on the offending line or the line directly above it.
//
// Rules (see DESIGN.md Sec. 10 for the rationale table):
//   determinism (src/ only)
//     banned-rand          std::rand / srand / random_device
//     wall-clock           system_clock / steady_clock / high_resolution_clock,
//                          time(), clock(), gettimeofday, localtime, ...
//     unordered-iteration  range-for over an unordered container (iteration
//                          order is implementation-defined => replay-hostile)
//   lifetime (src/ only)
//     delayed-ref-capture  [&] catch-all (any scheduling call) or raw `this`
//                          (direct EventQueue::schedule/schedule_periodic)
//                          in a callback armed with a nonzero delay
//     slab-callback-invoke invoking a callable that still lives inside
//                          indexed container storage (slots_[i].callback(...))
//                          — the exact PR-3 bug shape; move it to a local first
//   hygiene (everywhere scanned)
//     pragma-once            every header starts with #pragma once
//     using-namespace-header no `using namespace` at header scope
//     float-equality         (src/detect/, src/csi/ only) == / != on
//                            floating-point values in detector/estimator math
//     scenario-config-literal (outside src/coex/ and tests/) naming
//                            ScenarioConfig/BleScenarioConfig directly —
//                            consumers build scenarios from ScenarioSpec
//                            presets + set() overrides so experiment setups
//                            stay diffable data
//     grant-issue-outside-engine (src/ outside src/core/) calling the
//                            grant-issue primitives (begin_grant/begin_lease/
//                            arm_watchdog/arm_lease_expiry) or naming
//                            GrantHistory — grants are issued inside the
//                            coordination engine so the election layer and
//                            invariant checker see every one
//     thread-outside-pool    (src/ outside src/runner/ and
//                            src/sim/parallel_dispatch.cpp) naming
//                            std::thread / std::jthread / std::async — every
//                            thread comes from runner::TrialPool or
//                            sim::WorkerPool so core budgets and the
//                            bitwise-determinism gates hold
//
// Baseline ratchet: --baseline FILE suppresses the findings fingerprinted in
// FILE; anything new fails (exit 2). --write-baseline refuses to grow the
// committed set (exit 3), so the baseline can only shrink over time.
//
// Exit codes: 0 clean (or all findings baselined), 1 usage/IO error,
//             2 new findings, 3 baseline ratchet violation.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;   // normalized, as given on the command line
  std::size_t line;   // 1-based
  std::string rule;
  std::string message;
  std::string fingerprint;  // path|rule|trimmed-line-text|occurrence
};

const std::vector<std::string> kAllRules = {
    "banned-rand",        "wall-clock",           "unordered-iteration",
    "delayed-ref-capture", "slab-callback-invoke", "pragma-once",
    "using-namespace-header", "float-equality",   "scenario-config-literal",
    "grant-issue-outside-engine", "thread-outside-pool",
};

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string normalize_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_has_segment(const std::string& path, const std::string& seg) {
  // True when `seg` (e.g. "src") appears as a whole directory component.
  const std::string p = "/" + path;
  return p.find("/" + seg + "/") != std::string::npos;
}

bool is_header(const std::string& path) {
  return path.size() > 4 && (path.rfind(".hpp") == path.size() - 4 ||
                             path.rfind(".h") == path.size() - 2);
}

/// One scanned file: raw lines, comment/string-stripped code lines, and the
/// per-line set of rules waived by `// bicord-lint: allow(...)` annotations.
struct FileView {
  std::vector<std::string> raw;
  std::vector<std::string> code;               // literals/comments blanked
  std::vector<std::set<std::string>> allowed;  // effective allow set per line
};

void collect_allows(const std::string& comment, std::set<std::string>* out) {
  static const std::regex re(R"(bicord-lint:\s*allow\(([^)]*)\))");
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), re);
       it != std::sregex_iterator(); ++it) {
    std::stringstream ss((*it)[1].str());
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule = trim(rule);
      if (!rule.empty()) out->insert(rule);
    }
  }
}

FileView load_file(const std::string& path, bool* ok) {
  FileView v;
  std::ifstream in(path, std::ios::binary);
  *ok = static_cast<bool>(in);
  if (!*ok) return v;
  std::string line;
  bool in_block_comment = false;
  std::vector<std::set<std::string>> line_allows;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string code;
    std::string comment;
    code.reserve(line.size());
    for (std::size_t i = 0; i < line.size();) {
      if (in_block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          comment += line[i++];
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        comment.append(line, i + 2, std::string::npos);
        break;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '\'' && !code.empty() &&
          (std::isalnum(static_cast<unsigned char>(code.back())) ||
           code.back() == '_')) {
        // A quote directly after an identifier/digit character is a C++14
        // digit separator (1'000'000), not the start of a char literal.
        code += c;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        code += quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          ++i;
        }
        if (i < line.size()) {
          code += quote;
          ++i;
        }
        continue;
      }
      code += c;
      ++i;
    }
    v.raw.push_back(line);
    v.code.push_back(std::move(code));
    std::set<std::string> allows;
    collect_allows(comment, &allows);
    line_allows.push_back(std::move(allows));
  }
  // An annotation waives its own line and the one below it, so a comment
  // line above the offending statement works naturally.
  v.allowed.resize(v.raw.size());
  for (std::size_t i = 0; i < line_allows.size(); ++i) {
    v.allowed[i].insert(line_allows[i].begin(), line_allows[i].end());
    if (i + 1 < v.allowed.size()) {
      v.allowed[i + 1].insert(line_allows[i].begin(), line_allows[i].end());
    }
  }
  return v;
}

class Linter {
 public:
  void scan(const std::string& path) {
    const std::string norm = normalize_path(path);
    bool ok = false;
    FileView v = load_file(path, &ok);
    if (!ok) {
      std::fprintf(stderr, "bicord-lint: cannot read %s\n", path.c_str());
      io_error_ = true;
      return;
    }
    const bool core = path_has_segment(norm, "src");
    const bool detector = norm.find("src/detect/") != std::string::npos ||
                          norm.find("src/csi/") != std::string::npos;
    // The config structs' home layer plus the tests that exercise them.
    const bool spec_layer = norm.find("src/coex/") != std::string::npos ||
                            path_has_segment(norm, "tests");
    if (core) {
      check_banned_tokens(norm, v);
      check_unordered_iteration(norm, v);
      check_delayed_captures(norm, v);
      check_slab_invoke(norm, v);
    }
    if (is_header(norm)) {
      check_pragma_once(norm, v);
      check_using_namespace(norm, v);
    }
    if (detector) check_float_equality(norm, v);
    if (!spec_layer) check_scenario_config_literal(norm, v);
    // Grant issuance is the engine's job: everything under src/ except the
    // engine's own home directory is fenced off.
    if (core && norm.find("src/core/") == std::string::npos) {
      check_grant_issue(norm, v);
    }
    // Threads live in exactly two places: the trial pool (src/runner/) and
    // the intra-sim worker pool (src/sim/parallel_dispatch.cpp). Anywhere
    // else a raw thread bypasses both the core budget and the determinism
    // contract.
    const bool pool_home =
        norm.find("src/runner/") != std::string::npos ||
        norm.find("src/sim/parallel_dispatch.cpp") != std::string::npos;
    if (core && !pool_home) check_thread_outside_pool(norm, v);
  }

  [[nodiscard]] const std::vector<Finding>& findings() const { return findings_; }
  [[nodiscard]] bool io_error() const { return io_error_; }

  /// Assigns occurrence-indexed fingerprints (stable across unrelated edits:
  /// no line numbers, just path|rule|text).
  void finalize() {
    std::map<std::string, int> seen;
    for (auto& f : findings_) {
      const std::string base = f.path + "|" + f.rule + "|" + trim(f.message);
      f.fingerprint = base + "|" + std::to_string(seen[base]++);
    }
  }

 private:
  void report(const std::string& path, const FileView& v, std::size_t line_idx,
              const std::string& rule, const std::string& what) {
    if (line_idx < v.allowed.size() && v.allowed[line_idx].count(rule)) return;
    Finding f;
    f.path = path;
    f.line = line_idx + 1;
    f.rule = rule;
    f.message = what;
    findings_.push_back(std::move(f));
  }

  void check_banned_tokens(const std::string& path, const FileView& v) {
    static const std::regex rand_re(
        R"(\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|[^:\w]rand\s*\()");
    static const std::regex clock_re(
        R"(\b(system_clock|steady_clock|high_resolution_clock)\b|\btime\s*\(|\bclock\s*\(|\bgettimeofday\b|\blocaltime\b|\bgmtime\b|\bstrftime\b)");
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      const std::string& c = v.code[i];
      if (c.find("#include") != std::string::npos) continue;  // type-only use is fine
      if (std::regex_search(c, rand_re)) {
        report(path, v, i, "banned-rand",
               "nondeterministic RNG source (use util::Rng streams): " + trim(v.raw[i]));
      }
      if (std::regex_search(c, clock_re)) {
        report(path, v, i, "wall-clock",
               "wall-clock read in simulation code (sim time only): " + trim(v.raw[i]));
      }
    }
  }

  void check_unordered_iteration(const std::string& path, const FileView& v) {
    // Pass 1: names declared with an unordered container type in this file.
    std::set<std::string> names;
    static const std::regex decl_tail(R"(([A-Za-z_]\w*)\s*(?:;|=|\{|$))");
    for (const auto& c : v.code) {
      if (c.find("unordered_map") == std::string::npos &&
          c.find("unordered_set") == std::string::npos) {
        continue;
      }
      const auto gt = c.rfind('>');
      if (gt == std::string::npos) continue;
      const std::string tail = c.substr(gt + 1);
      std::smatch m;
      if (std::regex_search(tail, m, decl_tail)) names.insert(m[1].str());
    }
    // Pass 2: range-for whose range expression is such a name (or inlines an
    // unordered container expression directly).
    static const std::regex range_for(R"(for\s*\([^;()]*:\s*([^)]+)\))");
    static const std::regex word_re(R"([A-Za-z_]\w*)");
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      std::smatch m;
      const std::string& c = v.code[i];
      if (!std::regex_search(c, m, range_for)) continue;
      const std::string range = m[1].str();
      bool hit = range.find("unordered_") != std::string::npos;
      if (!hit) {
        for (auto it = std::sregex_iterator(range.begin(), range.end(), word_re);
             it != std::sregex_iterator(); ++it) {
          if (names.count(it->str())) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        report(path, v, i, "unordered-iteration",
               "iteration order of unordered containers is not deterministic: " +
                   trim(v.raw[i]));
      }
    }
  }

  // --- delayed-ref-capture ---------------------------------------------------

  /// Concatenates code lines (newline-separated) so call expressions spanning
  /// lines can be matched; `line_of(pos)` maps back to a line index.
  struct Buffer {
    std::string text;
    std::vector<std::size_t> starts;  // offset of each line
    explicit Buffer(const FileView& v) {
      for (const auto& c : v.code) {
        starts.push_back(text.size());
        text += c;
        text += '\n';
      }
    }
    [[nodiscard]] std::size_t line_of(std::size_t pos) const {
      auto it = std::upper_bound(starts.begin(), starts.end(), pos);
      return static_cast<std::size_t>(it - starts.begin()) - 1;
    }
  };

  static bool is_zero_delay(const std::string& arg_in) {
    const std::string arg = trim(arg_in);
    static const std::regex zero_re(
        R"(^(Duration::zero\s*\(\s*\)|0(_us|_ms|_ns|_sec)?|[\w.]*now\s*\(\s*\))$)");
    return std::regex_match(arg, zero_re);
  }

  void check_delayed_captures(const std::string& path, const FileView& v) {
    const Buffer buf(v);
    static const std::regex call_re(
        R"((?:\.|->)\s*(schedule_periodic|schedule|after|every|at)\s*\()");
    for (auto it = std::sregex_iterator(buf.text.begin(), buf.text.end(), call_re);
         it != std::sregex_iterator(); ++it) {
      const std::string method = (*it)[1].str();
      const std::size_t open = static_cast<std::size_t>(it->position(0)) +
                               static_cast<std::size_t>(it->length(0)) - 1;
      // Balance parens to find the argument extent and the first top-level comma.
      int depth = 0;
      std::size_t close = std::string::npos;
      std::size_t first_comma = std::string::npos;
      for (std::size_t p = open; p < buf.text.size(); ++p) {
        const char ch = buf.text[p];
        if (ch == '(' || ch == '[' || ch == '{') ++depth;
        if (ch == ')' || ch == ']' || ch == '}') {
          --depth;
          if (depth == 0) {
            close = p;
            break;
          }
        }
        if (ch == ',' && depth == 1 && first_comma == std::string::npos) {
          first_comma = p;
        }
      }
      if (close == std::string::npos || first_comma == std::string::npos) continue;
      const std::string args = buf.text.substr(open + 1, close - open - 1);
      const std::string delay_arg =
          buf.text.substr(open + 1, first_comma - open - 1);
      if (is_zero_delay(delay_arg)) continue;
      // Lambda capture lists inside the argument region.
      static const std::regex intro_re(R"(\[([^\[\]]*)\]\s*(?:\(|mutable|\{))");
      for (auto lit = std::sregex_iterator(args.begin(), args.end(), intro_re);
           lit != std::sregex_iterator(); ++lit) {
        const std::string intro = trim((*lit)[1].str());
        const bool catch_all_ref =
            intro == "&" || intro.rfind("&,", 0) == 0 ||
            (!intro.empty() && intro.front() == '&' && intro.size() > 1 &&
             (intro[1] == ' ' || intro[1] == ','));
        static const std::regex this_re(R"((^|[,\s])this($|[,\s]))");
        const bool raw_this = std::regex_search(intro, this_re);
        const bool direct_queue =
            method == "schedule" || method == "schedule_periodic";
        if (catch_all_ref || (raw_this && direct_queue)) {
          const std::size_t line_idx = buf.line_of(
              static_cast<std::size_t>(it->position(0)));
          report(path, v, line_idx, "delayed-ref-capture",
                 "callback with [" + intro + "] capture armed via " + method +
                     "() with nonzero delay may outlive its captures: " +
                     trim(v.raw[line_idx]));
        }
      }
    }
  }

  void check_slab_invoke(const std::string& path, const FileView& v) {
    // slots_[idx].callback(...) — running a callable while it still lives in
    // growable container storage (the PR-3 use-after-free shape). Move the
    // callable to a local before invoking it.
    static const std::regex re(
        R"(\w+\s*\[[^\[\]]+\]\s*\.\s*\w*(callback|handler|tick|functor|cb|fn)\w*\s*\()");
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      if (std::regex_search(v.code[i], re)) {
        report(path, v, i, "slab-callback-invoke",
               "callable invoked out of indexed container storage (PR-3 "
               "use-after-free shape; move to a local first): " +
                   trim(v.raw[i]));
      }
    }
  }

  void check_thread_outside_pool(const std::string& path, const FileView& v) {
    // Every thread in src/ must come from runner::TrialPool (across-trial
    // fan-out, budgeted by --jobs/BICORD_JOBS) or sim::WorkerPool (intra-sim
    // shard fan-out, budgeted by sim.threads). A raw std::thread/std::async
    // escapes both budgets and the bitwise-determinism gates built around
    // those pools.
    static const std::regex re(R"(\bstd\s*::\s*(thread|jthread|async)\b)");
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      const std::string& c = v.code[i];
      if (c.find("#include") != std::string::npos) continue;
      if (std::regex_search(c, re)) {
        report(path, v, i, "thread-outside-pool",
               "raw thread primitive outside runner::TrialPool / "
               "sim::WorkerPool (threads are budgeted and determinism-gated "
               "only through the pools): " +
                   trim(v.raw[i]));
      }
    }
  }

  void check_pragma_once(const std::string& path, const FileView& v) {
    for (const auto& c : v.code) {
      if (c.find("#pragma once") != std::string::npos) return;
    }
    report(path, v, 0, "pragma-once", "header is missing #pragma once");
  }

  void check_using_namespace(const std::string& path, const FileView& v) {
    static const std::regex re(R"(^\s*using\s+namespace\b)");
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      if (std::regex_search(v.code[i], re)) {
        report(path, v, i, "using-namespace-header",
               "`using namespace` leaks into every includer: " + trim(v.raw[i]));
      }
    }
  }

  void check_scenario_config_literal(const std::string& path, const FileView& v) {
    // Naming the raw config struct outside its home layer means a hand-rolled
    // field-by-field scenario; those drift from the presets and are invisible
    // to `bicordsim --scenario`. Build from ScenarioSpec instead.
    static const std::regex re(R"(\b(Ble)?ScenarioConfig\b)");
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      if (std::regex_search(v.code[i], re)) {
        report(path, v, i, "scenario-config-literal",
               "hand-rolled scenario config outside src/coex/ (build from "
               "ScenarioSpec presets + set() overrides): " +
                   trim(v.raw[i]));
      }
    }
  }

  void check_grant_issue(const std::string& path, const FileView& v) {
    // Issuing a grant means entering the engine's protection window: the
    // GrantorElection and InvariantChecker both learn about grants from
    // inside src/core/. A layer that calls the issue primitives (or keeps
    // its own GrantHistory) makes grants the failover invariants never see.
    static const std::regex call_re(
        R"((?:\.|->)\s*(begin_grant|begin_lease|arm_watchdog|arm_lease_expiry)\s*\()");
    static const std::regex history_re(R"(\bGrantHistory\b)");
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      const std::string& c = v.code[i];
      if (c.find("#include") != std::string::npos) continue;
      std::smatch m;
      if (std::regex_search(c, m, call_re)) {
        report(path, v, i, "grant-issue-outside-engine",
               m[1].str() +
                   "() issues a grant outside src/core/ (route through the "
                   "coordination engine so election/invariants see it): " +
                   trim(v.raw[i]));
      } else if (std::regex_search(c, history_re)) {
        report(path, v, i, "grant-issue-outside-engine",
               "GrantHistory owned outside src/core/ shadows the engine's "
               "grant record: " +
                   trim(v.raw[i]));
      }
    }
  }

  void check_float_equality(const std::string& path, const FileView& v) {
    // Operand is a floating literal, or an identifier declared float/double in
    // this file. Detector/estimator thresholds must use tolerances.
    std::set<std::string> fp_names;
    static const std::regex decl_re(R"(\b(?:double|float)\s+([A-Za-z_]\w*)\b)");
    for (const auto& c : v.code) {
      for (auto it = std::sregex_iterator(c.begin(), c.end(), decl_re);
           it != std::sregex_iterator(); ++it) {
        fp_names.insert((*it)[1].str());
      }
    }
    static const std::regex lit_re(
        R"((==|!=)\s*[-+]?(\d+\.\d*|\.\d+)f?\b|(\d+\.\d*|\.\d+)f?\s*(==|!=))");
    static const std::regex cmp_re(R"(([A-Za-z_]\w*)\s*(==|!=)\s*([A-Za-z_]\w*))");
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      const std::string& c = v.code[i];
      bool hit = std::regex_search(c, lit_re);
      if (!hit) {
        for (auto it = std::sregex_iterator(c.begin(), c.end(), cmp_re);
             it != std::sregex_iterator(); ++it) {
          if (fp_names.count((*it)[1].str()) || fp_names.count((*it)[3].str())) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        report(path, v, i, "float-equality",
               "exact floating-point comparison in detector/estimator math "
               "(use a tolerance): " +
                   trim(v.raw[i]));
      }
    }
  }

  std::vector<Finding> findings_;
  bool io_error_ = false;
};

std::set<std::string> read_baseline(const std::string& path, bool* exists) {
  std::set<std::string> out;
  std::ifstream in(path);
  *exists = static_cast<bool>(in);
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    out.insert(line);
  }
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: bicord_lint [--baseline FILE] [--write-baseline] "
               "[--list-rules] PATH...\n"
               "  PATH          file or directory (scans *.hpp/*.h/*.cpp)\n"
               "  --baseline    suppress fingerprints listed in FILE; new\n"
               "                findings exit 2\n"
               "  --write-baseline  rewrite FILE from current findings; grows\n"
               "                are rejected (exit 3) — the ratchet only shrinks\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  bool write_baseline = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (++i >= argc) return usage();
      baseline_path = argv[i];
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : kAllRules) std::printf("%s\n", r.c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bicord-lint: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();
  if (write_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "bicord-lint: --write-baseline requires --baseline\n");
    return 1;
  }

  // Expand directories; scan files in sorted order for stable output.
  std::vector<std::string> files;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(p, ec)) {
        if (!e.is_regular_file()) continue;
        const std::string ext = e.path().extension().string();
        if (ext == ".hpp" || ext == ".h" || ext == ".cpp") {
          files.push_back(normalize_path(e.path().generic_string()));
        }
      }
    } else {
      files.push_back(normalize_path(p));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Linter linter;
  for (const auto& f : files) linter.scan(f);
  if (linter.io_error()) return 1;
  linter.finalize();

  bool baseline_exists = false;
  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    baseline = read_baseline(baseline_path, &baseline_exists);
  }

  std::set<std::string> current;
  std::vector<const Finding*> fresh;
  for (const auto& f : linter.findings()) {
    current.insert(f.fingerprint);
    if (!baseline.count(f.fingerprint)) fresh.push_back(&f);
  }

  if (write_baseline) {
    if (baseline_exists) {
      std::vector<std::string> grown;
      std::set_difference(current.begin(), current.end(), baseline.begin(),
                          baseline.end(), std::back_inserter(grown));
      if (!grown.empty()) {
        std::fprintf(stderr,
                     "bicord-lint: ratchet: refusing to grow the baseline by "
                     "%zu finding(s); fix them instead:\n",
                     grown.size());
        for (const auto& g : grown) std::fprintf(stderr, "  %s\n", g.c_str());
        return 3;
      }
    }
    std::ofstream out(baseline_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bicord-lint: cannot write %s\n", baseline_path.c_str());
      return 1;
    }
    out << "# bicord-lint suppression baseline — may only shrink (ratchet).\n"
        << "# Regenerate with: bicord_lint --baseline <this file> "
           "--write-baseline <paths>\n";
    for (const auto& c : current) out << c << "\n";
    std::printf("bicord-lint: baseline written (%zu entries)\n", current.size());
    return 0;
  }

  for (const auto* f : fresh) {
    std::printf("%s:%zu: [%s] %s\n", f->path.c_str(), f->line, f->rule.c_str(),
                f->message.c_str());
  }
  // Stale entries mean the code got cleaner than the baseline: remind the
  // operator to ratchet down (not an error — shrinking is the goal).
  std::size_t stale = 0;
  for (const auto& b : baseline) {
    if (!current.count(b)) ++stale;
  }
  if (stale > 0) {
    std::printf(
        "bicord-lint: %zu baseline entr%s no longer needed — ratchet down "
        "with --write-baseline\n",
        stale, stale == 1 ? "y is" : "ies are");
  }
  if (!fresh.empty()) {
    std::printf("bicord-lint: %zu new finding(s)\n", fresh.size());
    return 2;
  }
  std::printf("bicord-lint: clean (%zu file(s), %zu baselined)\n", files.size(),
              current.size());
  return 0;
}
