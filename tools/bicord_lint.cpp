// bicord-lint v2: the project-aware analyzer clang-tidy cannot replace.
//
// Encodes BiCord-specific static rules — the determinism contract
// (DESIGN.md Sec. 7), the callback-lifetime lessons of the PR-3 EventQueue
// use-after-free, and the phase discipline of the PR-8 intra-simulation
// parallelism — as a two-pass analysis over the source tree.
//
//   pass 1  builds a per-TU model from the comment/string-stripped token
//           stream: resolved `#include "module/file.hpp"` edges (against
//           --src-root), a lightweight symbol table (float/double names,
//           Rng-typed names, unordered-container names), and the spans of
//           *parallel regions* — lambda bodies passed to
//           `WorkerPool::parallel_for`, `ParallelDispatcher` lane callbacks
//           (`.at()`/`.after()` on a dispatcher), and `MediumListener`
//           `*_absorb` phase overrides.
//   pass 2  runs cross-file rules over the merged model: the include-graph
//           layering DAG (declared in scripts/layering.txt) plus the
//           region-scoped parallel-phase rules.
//
// It is deliberately not a real C++ parser: every rule is chosen so that a
// stripped token scan decides it with near-zero false positives on this
// codebase, and every rule can be waived per line with
//
//     // bicord-lint: allow(<rule>[, <rule>…])
//
// on the offending line or the line directly above it. An allow() naming a
// rule this linter does not know prints a warning instead of silently
// waiving nothing.
//
// Rules (see DESIGN.md Sec. 10 for the rationale table):
//   determinism (src/ only)
//     banned-rand          std::rand / srand / random_device
//     wall-clock           system_clock / steady_clock / high_resolution_clock,
//                          time(), clock(), gettimeofday, localtime, ...
//     unordered-iteration  range-for over an unordered container (iteration
//                          order is implementation-defined => replay-hostile)
//     unordered-accumulation
//                          a float/double `+=` accumulation fed from an
//                          unordered-container loop — float addition does not
//                          commute, so the sum depends on hash order
//   parallel phase discipline (src/ outside the pool homes)
//     parallel-shared-mutation
//                          assignment / mutating container call on a
//                          by-reference lambda capture inside a parallel
//                          region, unless the write is indexed by the
//                          region's own index parameter (sharded writes are
//                          the sanctioned pattern)
//     rng-in-parallel      any Rng draw inside a parallel region — the draw
//                          order across workers is scheduling-dependent, so
//                          shared-stream draws break per-seed bitwise replay
//   lifetime (src/ only)
//     delayed-ref-capture  [&] catch-all (any scheduling call) or raw `this`
//                          (direct EventQueue::schedule/schedule_periodic)
//                          in a callback armed with a nonzero delay
//     slab-callback-invoke invoking a callable that still lives inside
//                          indexed container storage (slots_[i].callback(...))
//                          — the exact PR-3 bug shape; move it to a local first
//   structure (src/ only, needs --layering)
//     layering             an include chain that crosses the module DAG in
//                          scripts/layering.txt — e.g. core must not include
//                          wifi/ble/zigbee/coex; violations print the full
//                          include chain
//   hygiene (everywhere scanned)
//     pragma-once            every header starts with #pragma once
//     using-namespace-header no `using namespace` at header scope
//     float-equality         (src/detect/, src/csi/ only) == / != on
//                            floating-point values in detector/estimator math
//     scenario-config-literal (outside src/coex/ and tests/) naming
//                            ScenarioConfig/BleScenarioConfig directly
//     grant-issue-outside-engine (src/ outside src/core/) calling the
//                            grant-issue primitives or naming GrantHistory
//     thread-outside-pool    (src/ outside src/runner/ and
//                            src/sim/parallel_dispatch.cpp) naming
//                            std::thread / std::jthread / std::async
//
// Fingerprints are rule-tagged — `rule:path:token-hash:occurrence` — so the
// ratchet baseline can grow/shrink per rule: --write-baseline --rule NAME
// rewrites only that rule's entries and leaves every other rule's slice of
// the baseline byte-identical (refreshing one rule cannot quietly absorb a
// regression in another). --json emits the machine-readable finding list
// consumed by scripts/lint.sh.
//
// Baseline ratchet: --baseline FILE suppresses the findings fingerprinted in
// FILE; anything new fails (exit 2). --write-baseline refuses to grow the
// committed set (exit 3), so the baseline can only shrink over time.
//
// Exit codes: 0 clean (or all findings baselined), 1 usage/IO error,
//             2 new findings, 3 baseline ratchet violation.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;   // normalized, as given on the command line
  std::size_t line;   // 1-based
  std::string rule;
  std::string message;
  std::string fingerprint;  // rule:path:token-hash:occurrence
};

const std::vector<std::string> kAllRules = {
    "banned-rand",
    "wall-clock",
    "unordered-iteration",
    "unordered-accumulation",
    "parallel-shared-mutation",
    "rng-in-parallel",
    "delayed-ref-capture",
    "slab-callback-invoke",
    "layering",
    "pragma-once",
    "using-namespace-header",
    "float-equality",
    "scenario-config-literal",
    "grant-issue-outside-engine",
    "thread-outside-pool",
};

bool is_known_rule(const std::string& r) {
  return std::find(kAllRules.begin(), kAllRules.end(), r) != kAllRules.end();
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string normalize_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_has_segment(const std::string& path, const std::string& seg) {
  // True when `seg` (e.g. "src") appears as a whole directory component.
  const std::string p = "/" + path;
  return p.find("/" + seg + "/") != std::string::npos;
}

bool is_header(const std::string& path) {
  return path.size() > 4 && (path.rfind(".hpp") == path.size() - 4 ||
                             path.rfind(".h") == path.size() - 2);
}

/// FNV-1a over the trimmed token text: the line-number-free core of a
/// fingerprint. 16 hex chars keeps baselines grep-able and diff-stable.
std::string token_hash(const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// --- pass 1: file loading / token stripping ---------------------------------

struct IncludeRef {
  std::size_t line = 0;      // 0-based
  std::string target;        // as written: "module/file.hpp"
};

struct AllowWarning {
  std::size_t line = 0;  // 0-based
  std::string rule;
};

/// One scanned file: raw lines, comment/string-stripped code lines, the
/// per-line set of rules waived by `// bicord-lint: allow(...)` annotations,
/// quoted includes, and any allow() entries naming unknown rules.
struct FileView {
  std::vector<std::string> raw;
  std::vector<std::string> code;               // literals/comments blanked
  std::vector<std::set<std::string>> allowed;  // effective allow set per line
  std::vector<IncludeRef> includes;
  std::vector<AllowWarning> unknown_allows;
};

void collect_allows(const std::string& comment, std::set<std::string>* out,
                    std::vector<std::string>* unknown) {
  static const std::regex re(R"(bicord-lint:\s*allow\(([^)]*)\))");
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), re);
       it != std::sregex_iterator(); ++it) {
    std::stringstream ss((*it)[1].str());
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      rule = trim(rule);
      if (rule.empty()) continue;
      if (is_known_rule(rule)) {
        out->insert(rule);
      } else if (std::all_of(rule.begin(), rule.end(), [](char ch) {
                   return ident_char(ch) || ch == '-';
                 })) {
        // Warn only for plausible rule names (typos); syntax placeholders in
        // prose like `allow(<rule>…)` are not waivers and not worth noise.
        unknown->push_back(rule);
      }
    }
  }
}

/// True when line[i] is the opening quote of a raw string literal: the quote
/// is preceded by R (optionally prefixed u8/u/U/L), and the character before
/// the prefix is not part of an identifier.
bool raw_string_opens(const std::string& line, std::size_t i) {
  if (i == 0 || line[i] != '"' || line[i - 1] != 'R') return false;
  std::size_t p = i - 1;  // at 'R'
  if (p >= 2 && line[p - 2] == 'u' && line[p - 1] == '8') {
    p -= 2;
  } else if (p >= 1 &&
             (line[p - 1] == 'u' || line[p - 1] == 'U' || line[p - 1] == 'L')) {
    p -= 1;
  }
  return p == 0 || !ident_char(line[p - 1]);
}

FileView load_file(const std::string& path, bool* ok) {
  FileView v;
  std::ifstream in(path, std::ios::binary);
  *ok = static_cast<bool>(in);
  if (!*ok) return v;
  std::string line;
  bool in_block_comment = false;
  bool in_line_comment = false;  // a // comment ended in \ — next physical
                                 // line is still comment text
  bool in_raw_string = false;
  std::string raw_terminator;  // ")delim\"" of the open raw string
  std::vector<std::set<std::string>> line_allows;
  static const std::regex include_re(R"re(^\s*#\s*include\s*"([^"]+)")re");
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string code;
    std::string comment;
    code.reserve(line.size());
    std::size_t i = 0;
    if (in_line_comment) {
      // The previous // comment ended in a backslash: this whole physical
      // line is comment, and it may chain another continuation.
      comment = line;
      in_line_comment = !line.empty() && line.back() == '\\';
      i = line.size();
    } else if (in_raw_string) {
      const auto end = line.find(raw_terminator);
      if (end == std::string::npos) {
        i = line.size();  // whole line is raw-string body: blank it
      } else {
        in_raw_string = false;
        i = end + raw_terminator.size();
        code += '"';  // keep a token so the literal stays visible as one unit
      }
    } else if (std::smatch m; std::regex_search(line, m, include_re)) {
      IncludeRef ref;
      ref.line = v.raw.size();
      ref.target = normalize_path(m[1].str());
      v.includes.push_back(std::move(ref));
    }
    for (; i < line.size();) {
      if (in_block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          comment += line[i++];
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        comment.append(line, i + 2, std::string::npos);
        // A // comment whose physical line ends in a backslash continues
        // onto the next line; scanning that line as code would manufacture
        // phantom findings (or hide the comment's allow() reach).
        in_line_comment = !line.empty() && line.back() == '\\';
        break;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (raw_string_opens(line, i)) {
        // R"delim( ... )delim" is one opaque token: its body may contain
        // quotes, comment markers and unbalanced parens that must not reach
        // the comment/string state machine.
        std::size_t d = i + 1;
        std::string delim;
        while (d < line.size() && line[d] != '(') delim += line[d++];
        if (d >= line.size()) {
          // Malformed open (no '(' on this line): treat rest as opaque.
          break;
        }
        raw_terminator = ")" + delim + "\"";
        const auto end = line.find(raw_terminator, d + 1);
        code += '"';
        if (end == std::string::npos) {
          in_raw_string = true;
          i = line.size();
        } else {
          i = end + raw_terminator.size();
          code += '"';
        }
        continue;
      }
      if (c == '\'' && !code.empty() &&
          (std::isalnum(static_cast<unsigned char>(code.back())) ||
           code.back() == '_')) {
        // A quote directly after an identifier/digit character is a C++14
        // digit separator (1'000'000), not the start of a char literal.
        code += c;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        code += quote;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          ++i;
        }
        if (i < line.size()) {
          code += quote;
          ++i;
        }
        continue;
      }
      code += c;
      ++i;
    }
    v.raw.push_back(line);
    v.code.push_back(std::move(code));
    std::set<std::string> allows;
    std::vector<std::string> unknown;
    collect_allows(comment, &allows, &unknown);
    for (auto& u : unknown) {
      v.unknown_allows.push_back({v.raw.size() - 1, std::move(u)});
    }
    line_allows.push_back(std::move(allows));
  }
  // An annotation waives its own line and the one below it, so a comment
  // line above the offending statement works naturally.
  v.allowed.resize(v.raw.size());
  for (std::size_t i = 0; i < line_allows.size(); ++i) {
    v.allowed[i].insert(line_allows[i].begin(), line_allows[i].end());
    if (i + 1 < v.allowed.size()) {
      v.allowed[i + 1].insert(line_allows[i].begin(), line_allows[i].end());
    }
  }
  return v;
}

/// Concatenates code lines (newline-separated) so call expressions spanning
/// lines can be matched; `line_of(pos)` maps back to a line index.
struct Buffer {
  std::string text;
  std::vector<std::size_t> starts;  // offset of each line
  explicit Buffer(const FileView& v) {
    for (const auto& c : v.code) {
      starts.push_back(text.size());
      text += c;
      text += '\n';
    }
  }
  [[nodiscard]] std::size_t line_of(std::size_t pos) const {
    auto it = std::upper_bound(starts.begin(), starts.end(), pos);
    return static_cast<std::size_t>(it - starts.begin()) - 1;
  }
};

/// Balanced-bracket scan from an opening ( [ { at `open`; returns the offset
/// of the matching closer, or npos.
std::size_t match_forward(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t p = open; p < text.size(); ++p) {
    const char ch = text[p];
    if (ch == '(' || ch == '[' || ch == '{') ++depth;
    if (ch == ')' || ch == ']' || ch == '}') {
      --depth;
      if (depth == 0) return p;
    }
  }
  return std::string::npos;
}

// --- pass 1: the per-TU model -----------------------------------------------

struct ParallelRegion {
  enum class Kind { kParallelFor, kLaneCallback, kAbsorbOverride };
  Kind kind = Kind::kParallelFor;
  std::size_t begin = 0;  // buffer offset of the opening {
  std::size_t end = 0;    // buffer offset of the matching }
  std::string index_param;             // lambda's first parameter name
  bool catch_all_ref = false;          // [&] / [&, ...]
  std::set<std::string> ref_captures;  // explicit &name captures
};

const char* region_kind_name(ParallelRegion::Kind k) {
  switch (k) {
    case ParallelRegion::Kind::kParallelFor: return "a parallel_for body";
    case ParallelRegion::Kind::kLaneCallback:
      return "a dispatcher lane callback";
    case ParallelRegion::Kind::kAbsorbOverride:
      return "an absorb-phase override";
  }
  return "a parallel region";
}

struct TuModel {
  std::string path;    // normalized, as given
  std::string module;  // first dir under --src-root, or "" outside src
  FileView view;
  Buffer buf;
  std::set<std::string> fp_names;         // names declared float/double
  std::set<std::string> rng_names;        // names declared (util::)Rng
  std::set<std::string> dispatcher_names; // names declared ParallelDispatcher
  std::set<std::string> unordered_names;  // names declared unordered_map/set
  std::vector<ParallelRegion> regions;

  explicit TuModel(FileView v) : view(std::move(v)), buf(view) {}
};

/// Splits a lambda capture intro ("&", "&a, b", "this, &c") into the
/// region's capture fields.
void parse_capture_intro(const std::string& intro, ParallelRegion* region) {
  std::stringstream ss(intro);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    if (item == "&") {
      region->catch_all_ref = true;
      continue;
    }
    if (item[0] == '&') {
      // "&name" or init-capture "&name = expr" — both bind by reference.
      std::string name = trim(item.substr(1));
      const auto eq = name.find('=');
      if (eq != std::string::npos) name = trim(name.substr(0, eq));
      if (!name.empty() && ident_char(name[0])) region->ref_captures.insert(name);
    }
  }
}

/// First parameter name of a lambda parameter list ("std::size_t i" -> "i").
std::string first_param_name(const std::string& params) {
  std::string head = params;
  const auto comma = head.find(',');
  if (comma != std::string::npos) head = head.substr(0, comma);
  static const std::regex last_ident(R"(([A-Za-z_]\w*)\s*$)");
  std::smatch m;
  if (std::regex_search(head, m, last_ident)) return m[1].str();
  return "";
}

/// Finds the first lambda inside the argument extent [begin, end) of `text`
/// and appends a region of `kind`. Returns true when one was found.
bool add_lambda_region(const std::string& text, std::size_t begin,
                       std::size_t end, ParallelRegion::Kind kind,
                       std::vector<ParallelRegion>* out) {
  static const std::regex intro_re(
      R"(\[([^\[\]]*)\]\s*(?:\(([^()]*)\))?\s*(?:mutable\b\s*)?\{)");
  const std::string args = text.substr(begin, end - begin);
  std::smatch m;
  if (!std::regex_search(args, m, intro_re)) return false;
  const std::size_t body_open =
      begin + static_cast<std::size_t>(m.position(0)) +
      static_cast<std::size_t>(m.length(0)) - 1;
  const std::size_t body_close = match_forward(text, body_open);
  if (body_close == std::string::npos) return false;
  ParallelRegion region;
  region.kind = kind;
  region.begin = body_open;
  region.end = body_close;
  region.index_param = first_param_name(m[2].str());
  parse_capture_intro(m[1].str(), &region);
  out->push_back(std::move(region));
  return true;
}

TuModel build_model(const std::string& path, bool* ok) {
  FileView v = load_file(path, ok);
  TuModel model(std::move(v));
  model.path = normalize_path(path);
  if (!*ok) return model;

  // Symbol table: declared names with types the rules care about.
  static const std::regex fp_decl(R"(\b(?:double|float)\s+([A-Za-z_]\w*)\b)");
  static const std::regex rng_decl(
      R"(\bRng\s*[&*]?\s*([A-Za-z_]\w*)\s*[;,)=({]?)");
  static const std::regex disp_decl(
      R"(\bParallelDispatcher\s*[&*]?\s*([A-Za-z_]\w*)\b)");
  static const std::regex decl_tail(R"(([A-Za-z_]\w*)\s*(?:;|=|\{|\)|,|$))");
  for (const auto& c : model.view.code) {
    for (auto it = std::sregex_iterator(c.begin(), c.end(), fp_decl);
         it != std::sregex_iterator(); ++it) {
      model.fp_names.insert((*it)[1].str());
    }
    for (auto it = std::sregex_iterator(c.begin(), c.end(), rng_decl);
         it != std::sregex_iterator(); ++it) {
      model.rng_names.insert((*it)[1].str());
    }
    for (auto it = std::sregex_iterator(c.begin(), c.end(), disp_decl);
         it != std::sregex_iterator(); ++it) {
      model.dispatcher_names.insert((*it)[1].str());
    }
    if (c.find("unordered_map") != std::string::npos ||
        c.find("unordered_set") != std::string::npos) {
      const auto gt = c.rfind('>');
      if (gt != std::string::npos) {
        const std::string tail = c.substr(gt + 1);
        std::smatch m;
        if (std::regex_search(tail, m, decl_tail)) {
          model.unordered_names.insert(m[1].str());
        }
      }
    }
  }

  const std::string& text = model.buf.text;

  // Parallel regions, kind 1: lambdas passed to WorkerPool::parallel_for.
  static const std::regex pf_re(R"(\bparallel_for\s*\()");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), pf_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position(0)) +
                             static_cast<std::size_t>(it->length(0)) - 1;
    const std::size_t close = match_forward(text, open);
    if (close == std::string::npos) continue;
    add_lambda_region(text, open + 1, close,
                      ParallelRegion::Kind::kParallelFor, &model.regions);
  }

  // Kind 2: lane callbacks — lambdas handed to a ParallelDispatcher's
  // at()/after() (they execute on worker threads inside a window).
  static const std::regex lane_re(
      R"((\b[A-Za-z_]\w*)\s*(?:\.|->)\s*(?:at|after)\s*\()");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), lane_re);
       it != std::sregex_iterator(); ++it) {
    const std::string recv = (*it)[1].str();
    std::string lower = recv;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    if (!model.dispatcher_names.count(recv) &&
        lower.find("dispatcher") == std::string::npos) {
      continue;
    }
    const std::size_t open = static_cast<std::size_t>(it->position(0)) +
                             static_cast<std::size_t>(it->length(0)) - 1;
    const std::size_t close = match_forward(text, open);
    if (close == std::string::npos) continue;
    add_lambda_region(text, open + 1, close,
                      ParallelRegion::Kind::kLaneCallback, &model.regions);
  }

  // Kind 3: MediumListener absorb-phase override bodies — `*_absorb(...)`
  // definitions (a trailing `{`, not a declaration's `;` or a call's `;`).
  static const std::regex absorb_re(R"(\b\w+_absorb\s*\()");
  static const std::regex absorb_body(
      R"(^\s*(?:const\b\s*)?(?:noexcept\b\s*)?(?:override\b\s*)?(?:final\b\s*)?\{)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), absorb_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position(0)) +
                             static_cast<std::size_t>(it->length(0)) - 1;
    const std::size_t close = match_forward(text, open);
    if (close == std::string::npos) continue;
    const std::string after = text.substr(close + 1, 64);
    std::smatch m;
    if (!std::regex_search(after, m, absorb_body)) continue;
    const std::size_t body_open = close + 1 +
                                  static_cast<std::size_t>(m.position(0)) +
                                  static_cast<std::size_t>(m.length(0)) - 1;
    const std::size_t body_close = match_forward(text, body_open);
    if (body_close == std::string::npos) continue;
    ParallelRegion region;
    region.kind = ParallelRegion::Kind::kAbsorbOverride;
    region.begin = body_open;
    region.end = body_close;
    model.regions.push_back(std::move(region));
  }

  return model;
}

// --- pass 2: the layering DAG -----------------------------------------------

/// scripts/layering.txt: one line per module, `module: dep dep …` — the
/// module may include itself plus the listed modules. Keep the lists
/// transitively closed; the analyzer additionally walks chains so a
/// non-closed DAG still reports the full include path of an escape.
struct LayerConfig {
  std::map<std::string, std::set<std::string>> deps;
  bool loaded = false;
};

bool load_layering(const std::string& path, LayerConfig* cfg,
                   std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot read layering file " + path;
    return false;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      *error = path + ":" + std::to_string(lineno) +
               ": expected `module: dep dep …`";
      return false;
    }
    const std::string module = trim(line.substr(0, colon));
    if (module.empty()) {
      *error = path + ":" + std::to_string(lineno) + ": empty module name";
      return false;
    }
    std::set<std::string>& deps = cfg->deps[module];
    std::stringstream ss(line.substr(colon + 1));
    std::string dep;
    while (ss >> dep) deps.insert(dep);
  }
  cfg->loaded = true;
  return true;
}

// --- the analyzer -----------------------------------------------------------

class Linter {
 public:
  Linter(std::string src_root, LayerConfig layering)
      : src_root_(std::move(src_root)), layering_(std::move(layering)) {}

  void scan(const std::string& path) {
    bool ok = false;
    TuModel model = build_model(path, &ok);
    if (!ok) {
      std::fprintf(stderr, "bicord-lint: cannot read %s\n", path.c_str());
      io_error_ = true;
      return;
    }
    model.module = module_of(model.path);
    const std::string& norm = model.path;
    const FileView& v = model.view;
    for (const auto& w : v.unknown_allows) {
      std::fprintf(stderr,
                   "%s:%zu: warning: bicord-lint allow() names unknown rule "
                   "'%s' (see --list-rules); nothing is waived by it\n",
                   norm.c_str(), w.line + 1, w.rule.c_str());
      ++unknown_allow_warnings_;
    }
    const bool core = path_has_segment(norm, "src");
    const bool detector = norm.find("src/detect/") != std::string::npos ||
                          norm.find("src/csi/") != std::string::npos;
    // The config structs' home layer plus the tests that exercise them.
    const bool spec_layer = norm.find("src/coex/") != std::string::npos ||
                            path_has_segment(norm, "tests");
    // Threads live in exactly two places: the trial pool (src/runner/) and
    // the intra-sim worker pool (src/sim/parallel_dispatch.cpp). Those homes
    // are also where the parallel-phase machinery itself lives, so the
    // region rules skip them too.
    const bool pool_home =
        norm.find("src/runner/") != std::string::npos ||
        norm.find("src/sim/parallel_dispatch.cpp") != std::string::npos;
    if (core) {
      check_banned_tokens(model);
      check_unordered_iteration(model);
      check_delayed_captures(model);
      check_slab_invoke(model);
      if (!pool_home) check_parallel_regions(model);
    }
    if (is_header(norm)) {
      check_pragma_once(model);
      check_using_namespace(model);
    }
    if (detector) check_float_equality(model);
    if (!spec_layer) check_scenario_config_literal(model);
    // Grant issuance is the engine's job: everything under src/ except the
    // engine's own home directory is fenced off.
    if (core && norm.find("src/core/") == std::string::npos) {
      check_grant_issue(model);
    }
    if (core && !pool_home) check_thread_outside_pool(model);

    // The include graph keeps the full FileView of every node (scanned or
    // pulled in lazily) so layering chains and edge waivers resolve even
    // when only a subset of the tree is scanned (lint-fast).
    if (layering_.loaded) register_graph_node(model.path, model.view);
    scanned_.push_back({model.path, model.module});
  }

  [[nodiscard]] const std::vector<Finding>& findings() const { return findings_; }
  [[nodiscard]] bool io_error() const { return io_error_; }
  [[nodiscard]] std::size_t unknown_allow_warnings() const {
    return unknown_allow_warnings_;
  }

  /// Pass 2 (cross-file rules) + occurrence-indexed rule-tagged fingerprints
  /// (stable across unrelated edits: no line numbers, just rule/path/token
  /// hash).
  void finalize() {
    if (layering_.loaded) check_layering();
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) {
                       if (a.path != b.path) return a.path < b.path;
                       return a.line < b.line;
                     });
    std::map<std::string, int> seen;
    for (auto& f : findings_) {
      const std::string base =
          f.rule + ":" + f.path + ":" + token_hash(trim(f.message));
      f.fingerprint = base + ":" + std::to_string(seen[base]++);
    }
  }

 private:
  struct ScannedFile {
    std::string path;
    std::string module;
  };

  struct GraphEdge {
    std::string to;     // node key of the included file
    std::size_t line;   // 0-based include line in the includer
    bool waived;        // allow(layering) on/above the include line
  };

  struct GraphNode {
    std::string module;
    std::vector<GraphEdge> edges;
  };

  // --- shared reporting ----------------------------------------------------

  void report(const TuModel& m, std::size_t line_idx, const std::string& rule,
              const std::string& what) {
    report_at(m.path, m.view, line_idx, rule, what);
  }

  void report_at(const std::string& path, const FileView& v,
                 std::size_t line_idx, const std::string& rule,
                 const std::string& what) {
    if (line_idx < v.allowed.size() && v.allowed[line_idx].count(rule)) return;
    Finding f;
    f.path = path;
    f.line = line_idx + 1;
    f.rule = rule;
    f.message = what;
    findings_.push_back(std::move(f));
  }

  // --- determinism / lifetime / hygiene rules (per-TU) ---------------------

  void check_banned_tokens(const TuModel& m) {
    static const std::regex rand_re(
        R"(\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|[^:\w]rand\s*\()");
    static const std::regex clock_re(
        R"(\b(system_clock|steady_clock|high_resolution_clock)\b|\btime\s*\(|\bclock\s*\(|\bgettimeofday\b|\blocaltime\b|\bgmtime\b|\bstrftime\b)");
    const FileView& v = m.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      const std::string& c = v.code[i];
      if (c.find("#include") != std::string::npos) continue;  // type-only use is fine
      if (std::regex_search(c, rand_re)) {
        report(m, i, "banned-rand",
               "nondeterministic RNG source (use util::Rng streams): " +
                   trim(v.raw[i]));
      }
      if (std::regex_search(c, clock_re)) {
        report(m, i, "wall-clock",
               "wall-clock read in simulation code (sim time only): " +
                   trim(v.raw[i]));
      }
    }
  }

  void check_unordered_iteration(const TuModel& m) {
    // Range-for whose range expression is a declared unordered name (or
    // inlines an unordered container expression directly); plus the
    // accumulation-order refinement: a float += fed by such a loop.
    static const std::regex range_for(R"(for\s*\([^;()]*:\s*([^)]+)\))");
    static const std::regex word_re(R"([A-Za-z_]\w*)");
    const FileView& v = m.view;
    const std::string& text = m.buf.text;
    for (auto it = std::sregex_iterator(text.begin(), text.end(), range_for);
         it != std::sregex_iterator(); ++it) {
      const std::string range = (*it)[1].str();
      bool hit = range.find("unordered_") != std::string::npos;
      if (!hit) {
        for (auto w = std::sregex_iterator(range.begin(), range.end(), word_re);
             w != std::sregex_iterator(); ++w) {
          if (m.unordered_names.count(w->str())) {
            hit = true;
            break;
          }
        }
      }
      if (!hit) continue;
      const std::size_t line_idx =
          m.buf.line_of(static_cast<std::size_t>(it->position(0)));
      report(m, line_idx, "unordered-iteration",
             "iteration order of unordered containers is not deterministic: " +
                 trim(v.raw[line_idx]));
      check_unordered_accumulation(m, *it);
    }
  }

  void check_unordered_accumulation(const TuModel& m,
                                    const std::smatch& for_match) {
    // The loop body: either the { … } block after the for(...) or the single
    // statement up to the next ';'.
    const std::string& text = m.buf.text;
    const std::size_t for_pos = static_cast<std::size_t>(for_match.position(0));
    const std::size_t paren = text.find('(', for_pos);
    if (paren == std::string::npos) return;
    const std::size_t close = match_forward(text, paren);
    if (close == std::string::npos) return;
    std::size_t body_begin = close + 1;
    while (body_begin < text.size() &&
           std::isspace(static_cast<unsigned char>(text[body_begin]))) {
      ++body_begin;
    }
    std::size_t body_end;
    if (body_begin < text.size() && text[body_begin] == '{') {
      body_end = match_forward(text, body_begin);
      if (body_end == std::string::npos) return;
    } else {
      body_end = text.find(';', body_begin);
      if (body_end == std::string::npos) return;
    }
    const std::string body = text.substr(body_begin, body_end - body_begin);
    static const std::regex accum_re(R"((\b[A-Za-z_]\w*)\s*\+=)");
    for (auto it = std::sregex_iterator(body.begin(), body.end(), accum_re);
         it != std::sregex_iterator(); ++it) {
      if (!m.fp_names.count((*it)[1].str())) continue;
      const std::size_t line_idx = m.buf.line_of(
          body_begin + static_cast<std::size_t>(it->position(0)));
      report(m, line_idx, "unordered-accumulation",
             "float accumulation fed from an unordered container — float "
             "addition does not commute, so the sum depends on hash order: " +
                 trim(m.view.raw[line_idx]));
    }
  }

  static bool is_zero_delay(const std::string& arg_in) {
    const std::string arg = trim(arg_in);
    static const std::regex zero_re(
        R"(^(Duration::zero\s*\(\s*\)|0(_us|_ms|_ns|_sec)?|[\w.]*now\s*\(\s*\))$)");
    return std::regex_match(arg, zero_re);
  }

  void check_delayed_captures(const TuModel& m) {
    const Buffer& buf = m.buf;
    const FileView& v = m.view;
    static const std::regex call_re(
        R"((?:\.|->)\s*(schedule_periodic|schedule|after|every|at)\s*\()");
    for (auto it = std::sregex_iterator(buf.text.begin(), buf.text.end(), call_re);
         it != std::sregex_iterator(); ++it) {
      const std::string method = (*it)[1].str();
      const std::size_t open = static_cast<std::size_t>(it->position(0)) +
                               static_cast<std::size_t>(it->length(0)) - 1;
      // Balance parens to find the argument extent and the first top-level comma.
      int depth = 0;
      std::size_t close = std::string::npos;
      std::size_t first_comma = std::string::npos;
      for (std::size_t p = open; p < buf.text.size(); ++p) {
        const char ch = buf.text[p];
        if (ch == '(' || ch == '[' || ch == '{') ++depth;
        if (ch == ')' || ch == ']' || ch == '}') {
          --depth;
          if (depth == 0) {
            close = p;
            break;
          }
        }
        if (ch == ',' && depth == 1 && first_comma == std::string::npos) {
          first_comma = p;
        }
      }
      if (close == std::string::npos || first_comma == std::string::npos) continue;
      const std::string args = buf.text.substr(open + 1, close - open - 1);
      const std::string delay_arg =
          buf.text.substr(open + 1, first_comma - open - 1);
      if (is_zero_delay(delay_arg)) continue;
      // Lambda capture lists inside the argument region.
      static const std::regex intro_re(R"(\[([^\[\]]*)\]\s*(?:\(|mutable|\{))");
      for (auto lit = std::sregex_iterator(args.begin(), args.end(), intro_re);
           lit != std::sregex_iterator(); ++lit) {
        const std::string intro = trim((*lit)[1].str());
        const bool catch_all_ref =
            intro == "&" || intro.rfind("&,", 0) == 0 ||
            (!intro.empty() && intro.front() == '&' && intro.size() > 1 &&
             (intro[1] == ' ' || intro[1] == ','));
        static const std::regex this_re(R"((^|[,\s])this($|[,\s]))");
        const bool raw_this = std::regex_search(intro, this_re);
        const bool direct_queue =
            method == "schedule" || method == "schedule_periodic";
        if (catch_all_ref || (raw_this && direct_queue)) {
          const std::size_t line_idx = buf.line_of(
              static_cast<std::size_t>(it->position(0)));
          report(m, line_idx, "delayed-ref-capture",
                 "callback with [" + intro + "] capture armed via " + method +
                     "() with nonzero delay may outlive its captures: " +
                     trim(v.raw[line_idx]));
        }
      }
    }
  }

  void check_slab_invoke(const TuModel& m) {
    // slots_[idx].callback(...) — running a callable while it still lives in
    // growable container storage (the PR-3 use-after-free shape). Move the
    // callable to a local before invoking it.
    static const std::regex re(
        R"(\w+\s*\[[^\[\]]+\]\s*\.\s*\w*(callback|handler|tick|functor|cb|fn)\w*\s*\()");
    const FileView& v = m.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      if (std::regex_search(v.code[i], re)) {
        report(m, i, "slab-callback-invoke",
               "callable invoked out of indexed container storage (PR-3 "
               "use-after-free shape; move to a local first): " +
                   trim(v.raw[i]));
      }
    }
  }

  void check_thread_outside_pool(const TuModel& m) {
    // Every thread in src/ must come from runner::TrialPool (across-trial
    // fan-out, budgeted by --jobs/BICORD_JOBS) or sim::WorkerPool (intra-sim
    // shard fan-out, budgeted by sim.threads). A raw std::thread/std::async
    // escapes both budgets and the bitwise-determinism gates built around
    // those pools.
    static const std::regex re(R"(\bstd\s*::\s*(thread|jthread|async)\b)");
    const FileView& v = m.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      const std::string& c = v.code[i];
      if (c.find("#include") != std::string::npos) continue;
      if (std::regex_search(c, re)) {
        report(m, i, "thread-outside-pool",
               "raw thread primitive outside runner::TrialPool / "
               "sim::WorkerPool (threads are budgeted and determinism-gated "
               "only through the pools): " +
                   trim(v.raw[i]));
      }
    }
  }

  void check_pragma_once(const TuModel& m) {
    for (const auto& c : m.view.code) {
      if (c.find("#pragma once") != std::string::npos) return;
    }
    report(m, 0, "pragma-once", "header is missing #pragma once");
  }

  void check_using_namespace(const TuModel& m) {
    static const std::regex re(R"(^\s*using\s+namespace\b)");
    const FileView& v = m.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      if (std::regex_search(v.code[i], re)) {
        report(m, i, "using-namespace-header",
               "`using namespace` leaks into every includer: " + trim(v.raw[i]));
      }
    }
  }

  void check_scenario_config_literal(const TuModel& m) {
    // Naming the raw config struct outside its home layer means a hand-rolled
    // field-by-field scenario; those drift from the presets and are invisible
    // to `bicordsim --scenario`. Build from ScenarioSpec instead.
    static const std::regex re(R"(\b(Ble)?ScenarioConfig\b)");
    const FileView& v = m.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      if (std::regex_search(v.code[i], re)) {
        report(m, i, "scenario-config-literal",
               "hand-rolled scenario config outside src/coex/ (build from "
               "ScenarioSpec presets + set() overrides): " +
                   trim(v.raw[i]));
      }
    }
  }

  void check_grant_issue(const TuModel& m) {
    // Issuing a grant means entering the engine's protection window: the
    // GrantorElection and InvariantChecker both learn about grants from
    // inside src/core/. A layer that calls the issue primitives (or keeps
    // its own GrantHistory) makes grants the failover invariants never see.
    static const std::regex call_re(
        R"((?:\.|->)\s*(begin_grant|begin_lease|arm_watchdog|arm_lease_expiry)\s*\()");
    static const std::regex history_re(R"(\bGrantHistory\b)");
    const FileView& v = m.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      const std::string& c = v.code[i];
      if (c.find("#include") != std::string::npos) continue;
      std::smatch sm;
      if (std::regex_search(c, sm, call_re)) {
        report(m, i, "grant-issue-outside-engine",
               sm[1].str() +
                   "() issues a grant outside src/core/ (route through the "
                   "coordination engine so election/invariants see it): " +
                   trim(v.raw[i]));
      } else if (std::regex_search(c, history_re)) {
        report(m, i, "grant-issue-outside-engine",
               "GrantHistory owned outside src/core/ shadows the engine's "
               "grant record: " +
                   trim(v.raw[i]));
      }
    }
  }

  void check_float_equality(const TuModel& m) {
    // Operand is a floating literal, or an identifier declared float/double in
    // this file. Detector/estimator thresholds must use tolerances.
    static const std::regex lit_re(
        R"((==|!=)\s*[-+]?(\d+\.\d*|\.\d+)f?\b|(\d+\.\d*|\.\d+)f?\s*(==|!=))");
    static const std::regex cmp_re(R"(([A-Za-z_]\w*)\s*(==|!=)\s*([A-Za-z_]\w*))");
    const FileView& v = m.view;
    for (std::size_t i = 0; i < v.code.size(); ++i) {
      const std::string& c = v.code[i];
      bool hit = std::regex_search(c, lit_re);
      if (!hit) {
        for (auto it = std::sregex_iterator(c.begin(), c.end(), cmp_re);
             it != std::sregex_iterator(); ++it) {
          if (m.fp_names.count((*it)[1].str()) ||
              m.fp_names.count((*it)[3].str())) {
            hit = true;
            break;
          }
        }
      }
      if (hit) {
        report(m, i, "float-equality",
               "exact floating-point comparison in detector/estimator math "
               "(use a tolerance): " +
                   trim(v.raw[i]));
      }
    }
  }

  // --- parallel-phase rules (per-TU, region-scoped) ------------------------

  /// True when `name` looks declared inside `region` (preceded, ignoring
  /// whitespace, by an identifier/&/*/> token that is not a statement
  /// keyword): `int n`, `auto& s`, `T* l`, `std::vector<int> out`.
  static bool declared_in_region(const std::string& region,
                                 const std::string& name) {
    static const std::set<std::string> kStmtKeywords = {
        "return", "throw", "delete", "goto", "case", "co_return", "co_yield"};
    std::size_t pos = 0;
    while ((pos = region.find(name, pos)) != std::string::npos) {
      const std::size_t after = pos + name.size();
      const bool whole = (pos == 0 || !ident_char(region[pos - 1])) &&
                         (after >= region.size() || !ident_char(region[after]));
      if (!whole) {
        pos = after;
        continue;
      }
      std::size_t p = pos;
      while (p > 0 && std::isspace(static_cast<unsigned char>(region[p - 1]))) {
        --p;
      }
      if (p > 0) {
        const char prev = region[p - 1];
        if (prev == '&' || prev == '*' || prev == '>') return true;
        if (ident_char(prev)) {
          std::size_t b = p;
          while (b > 0 && ident_char(region[b - 1])) --b;
          if (!kStmtKeywords.count(region.substr(b, p - b))) return true;
        }
      }
      pos = after;
    }
    return false;
  }

  /// True when the index expression of a write names the region's own index
  /// parameter or a region-local derivation of it — the sanctioned sharded
  /// write pattern (`out[i] = …`).
  static bool index_is_sharded(const std::string& index,
                               const std::string& region,
                               const std::string& param) {
    static const std::regex word_re(R"([A-Za-z_]\w*)");
    for (auto it = std::sregex_iterator(index.begin(), index.end(), word_re);
         it != std::sregex_iterator(); ++it) {
      if (!param.empty() && it->str() == param) return true;
      if (declared_in_region(region, it->str())) return true;
    }
    return false;
  }

  void check_parallel_regions(const TuModel& m) {
    for (const auto& region : m.regions) {
      const std::string body =
          m.buf.text.substr(region.begin + 1, region.end - region.begin - 1);
      const std::size_t base = region.begin + 1;
      check_rng_in_region(m, region, body, base);
      if (region.kind != ParallelRegion::Kind::kAbsorbOverride) {
        check_shared_mutation(m, region, body, base);
      }
    }
  }

  void check_rng_in_region(const TuModel& m, const ParallelRegion& region,
                           const std::string& body, std::size_t base) {
    // A draw through a declared Rng name, an rng-ish identifier, or the
    // simulator's rng() accessor. Worker interleaving makes the order of
    // draws from a shared stream nondeterministic; listener-local split
    // streams carry an explicit waiver instead.
    static const std::regex draw_re(
        R"((\b[A-Za-z_]\w*)\s*(?:\.|->)\s*(next|uniform|uniform_int|uniform_duration|normal|poisson|bernoulli|split|jump)\s*\()");
    static const std::regex accessor_re(R"(\brng\s*\(\s*\)\s*(?:\.|->)\s*\w+\s*\()");
    for (auto it = std::sregex_iterator(body.begin(), body.end(), draw_re);
         it != std::sregex_iterator(); ++it) {
      const std::string recv = (*it)[1].str();
      std::string lower = recv;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char ch) { return std::tolower(ch); });
      if (!m.rng_names.count(recv) && lower.find("rng") == std::string::npos) {
        continue;
      }
      const std::size_t line_idx =
          m.buf.line_of(base + static_cast<std::size_t>(it->position(0)));
      report(m, line_idx, "rng-in-parallel",
             std::string("Rng draw inside ") + region_kind_name(region.kind) +
                 " — draw order across workers is scheduling-dependent: " +
                 trim(m.view.raw[line_idx]));
    }
    for (auto it = std::sregex_iterator(body.begin(), body.end(), accessor_re);
         it != std::sregex_iterator(); ++it) {
      const std::size_t line_idx =
          m.buf.line_of(base + static_cast<std::size_t>(it->position(0)));
      report(m, line_idx, "rng-in-parallel",
             std::string("Rng draw inside ") + region_kind_name(region.kind) +
                 " — draw order across workers is scheduling-dependent: " +
                 trim(m.view.raw[line_idx]));
    }
  }

  void check_shared_mutation(const TuModel& m, const ParallelRegion& region,
                             const std::string& body, std::size_t base) {
    // Mutations of by-reference captures: direct assignment/compound
    // assignment/inc-dec at statement position, mutating container calls,
    // and indexed writes whose index does not derive from the region's own
    // index parameter. Region-local declarations are exempt.
    static const std::string kAssignOps =
        R"((?:=[^=]|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=|\+\+|--))";
    static const std::string kMutators =
        R"((?:push_back|emplace_back|emplace_front|emplace|insert|erase|clear|resize|reserve|assign|append|pop_back|pop_front|push_front|push|pop|store|fetch_add|fetch_sub|exchange|reset|merge|extract))";
    static const std::regex assign_re(
        R"((?:^|[;{}(,]|\bdo\b|\belse\b)\s*(?:\+\+|--)?\s*([A-Za-z_]\w*)\s*)" +
        kAssignOps);
    static const std::regex mutcall_re(
        R"(\b([A-Za-z_]\w*)\s*(?:\.|->)\s*)" + kMutators + R"(\s*\()");
    static const std::regex indexed_re(
        R"(\b([A-Za-z_]\w*)\s*\[([^\[\]]*)\]\s*)" + kAssignOps);

    const auto is_shared = [&](const std::string& name) {
      if (name == region.index_param || name == "this") return false;
      if (region.ref_captures.count(name)) return true;
      if (!region.catch_all_ref) return false;
      return !declared_in_region(body, name);
    };
    const auto flag = [&](std::size_t pos, const std::string& name,
                          const std::string& how) {
      const std::size_t line_idx = m.buf.line_of(base + pos);
      report(m, line_idx, "parallel-shared-mutation",
             how + " of by-reference capture `" + name + "` inside " +
                 region_kind_name(region.kind) +
                 " — concurrent writers race and break bitwise determinism: " +
                 trim(m.view.raw[line_idx]));
    };

    for (auto it = std::sregex_iterator(body.begin(), body.end(), assign_re);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (!is_shared(name)) continue;
      flag(static_cast<std::size_t>(it->position(1)), name, "assignment");
    }
    for (auto it = std::sregex_iterator(body.begin(), body.end(), mutcall_re);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (!is_shared(name)) continue;
      flag(static_cast<std::size_t>(it->position(1)), name, "mutating call");
    }
    for (auto it = std::sregex_iterator(body.begin(), body.end(), indexed_re);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (!is_shared(name)) continue;
      if (index_is_sharded((*it)[2].str(), body, region.index_param)) continue;
      flag(static_cast<std::size_t>(it->position(1)), name,
           "non-sharded indexed write");
    }
  }

  // --- layering (cross-file, pass 2) ---------------------------------------

  [[nodiscard]] std::string module_of(const std::string& path) const {
    if (src_root_.empty()) return "";
    const std::string norm = normalize_path(
        fs::path(path).lexically_normal().generic_string());
    const std::string root = normalize_path(
        fs::path(src_root_).lexically_normal().generic_string());
    if (norm.rfind(root + "/", 0) != 0) return "";
    const std::string rest = norm.substr(root.size() + 1);
    const auto slash = rest.find('/');
    if (slash == std::string::npos) return "";  // file directly in src/
    return rest.substr(0, slash);
  }

  [[nodiscard]] static std::string node_key(const std::string& path) {
    return normalize_path(fs::path(path).lexically_normal().generic_string());
  }

  /// Resolves a quoted include against --src-root, then the includer's own
  /// directory. Returns "" for external/system-ish targets.
  [[nodiscard]] std::string resolve_include(const std::string& includer,
                                            const std::string& target) const {
    if (!src_root_.empty()) {
      const fs::path p = fs::path(src_root_) / target;
      std::error_code ec;
      if (fs::is_regular_file(p, ec)) return node_key(p.generic_string());
    }
    const fs::path sibling = fs::path(includer).parent_path() / target;
    std::error_code ec;
    if (fs::is_regular_file(sibling, ec)) {
      return node_key(sibling.generic_string());
    }
    return "";
  }

  /// Adds `path` to the include graph (parsing it if needed) and pulls in
  /// everything it reaches, so chains through unscanned files still resolve.
  void register_graph_node(const std::string& path, const FileView& view) {
    const std::string key = node_key(path);
    if (graph_.count(key)) return;
    GraphNode node;
    node.module = module_of(path);
    for (const auto& inc : view.includes) {
      const std::string to = resolve_include(path, inc.target);
      if (to.empty()) continue;
      GraphEdge edge;
      edge.to = to;
      edge.line = inc.line;
      edge.waived = inc.line < view.allowed.size() &&
                    view.allowed[inc.line].count("layering") > 0;
      node.edges.push_back(std::move(edge));
    }
    graph_.emplace(key, std::move(node));
    graph_views_.emplace(key, view);
    for (const auto& edge : graph_.at(key).edges) load_graph_node(edge.to);
  }

  void load_graph_node(const std::string& key) {
    if (graph_.count(key)) return;
    bool ok = false;
    FileView view = load_file(key, &ok);
    if (!ok) {
      graph_.emplace(key, GraphNode{});  // unreadable: leaf node
      return;
    }
    register_graph_node(key, view);
  }

  [[nodiscard]] bool layer_allows(const std::string& from,
                                  const std::string& to) {
    if (from == to) return true;
    const auto it = layering_.deps.find(from);
    if (it == layering_.deps.end()) {
      if (warned_modules_.insert(from).second) {
        std::fprintf(stderr,
                     "bicord-lint: warning: module '%s' has no entry in the "
                     "layering file — its includes are unconstrained\n",
                     from.c_str());
      }
      return true;
    }
    return it->second.count(to) > 0;
  }

  [[nodiscard]] static std::string chain_to_string(
      const std::vector<std::string>& chain) {
    std::string out;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i) out += " -> ";
      out += chain[i];
    }
    return out;
  }

  void check_layering() {
    for (const auto& sf : scanned_) {
      if (sf.module.empty()) continue;  // layering constrains src/ modules only
      const std::string start = node_key(sf.path);
      const auto node_it = graph_.find(start);
      if (node_it == graph_.end()) continue;
      const FileView& view = graph_views_.at(start);

      // Direct edges: the include line itself is the violation site.
      for (const auto& edge : node_it->second.edges) {
        if (edge.waived) continue;
        const std::string to_module = graph_.at(edge.to).module;
        if (to_module.empty()) continue;
        if (layer_allows(sf.module, to_module)) continue;
        report_at(sf.path, view, edge.line, "layering",
                  "include chain " + start + " -> " + edge.to +
                      " crosses the layering DAG (module `" + sf.module +
                      "` may not depend on `" + to_module + "`)");
      }

      // Transitive chains: walk pairwise-allowed, unwaived edges only — a
      // pairwise-disallowed edge is its owner's direct violation, and a
      // waived edge insulates its consumers. What remains is the
      // non-transitively-closed-DAG escape: every hop is allowed but the
      // endpoints are not. One report per offending target module, with the
      // full chain.
      std::set<std::string> visited{start};
      std::set<std::string> reported_modules;
      std::vector<std::vector<std::string>> frontier{{start}};
      while (!frontier.empty()) {
        std::vector<std::vector<std::string>> next;
        for (const auto& chain : frontier) {
          const auto it = graph_.find(chain.back());
          if (it == graph_.end()) continue;
          const std::string from_module = it->second.module;
          for (const auto& edge : it->second.edges) {
            if (edge.waived || visited.count(edge.to)) continue;
            const std::string to_module = graph_.at(edge.to).module;
            if (!to_module.empty() && !from_module.empty() &&
                !layer_allows(from_module, to_module)) {
              continue;  // the owner's direct violation, not this chain's
            }
            visited.insert(edge.to);
            std::vector<std::string> grown = chain;
            grown.push_back(edge.to);
            if (!to_module.empty() && grown.size() > 2 &&
                !layer_allows(sf.module, to_module) &&
                reported_modules.insert(to_module).second) {
              // Blame the first hop out of this file: that include pulled
              // the chain in.
              std::size_t line = 0;
              for (const auto& edge0 : node_it->second.edges) {
                if (node_key(edge0.to) == node_key(grown[1])) {
                  line = edge0.line;
                  break;
                }
              }
              report_at(sf.path, view, line, "layering",
                        "include chain " + chain_to_string(grown) +
                            " crosses the layering DAG (module `" + sf.module +
                            "` may not depend on `" + to_module + "`)");
            }
            next.push_back(std::move(grown));
          }
        }
        frontier = std::move(next);
      }
    }
  }

  std::string src_root_;
  LayerConfig layering_;
  std::vector<Finding> findings_;
  std::vector<ScannedFile> scanned_;
  std::map<std::string, GraphNode> graph_;
  std::map<std::string, FileView> graph_views_;
  std::set<std::string> warned_modules_;
  bool io_error_ = false;
  std::size_t unknown_allow_warnings_ = 0;
};

// --- baseline / output ------------------------------------------------------

std::set<std::string> read_baseline(const std::string& path, bool* exists) {
  std::set<std::string> out;
  std::ifstream in(path);
  *exists = static_cast<bool>(in);
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    out.insert(line);
  }
  return out;
}

bool fingerprint_has_rule(const std::string& fp, const std::string& rule) {
  return fp.rfind(rule + ":", 0) == 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bicord_lint [--baseline FILE] [--write-baseline] [--rule NAME]\n"
      "                   [--layering FILE] [--src-root DIR] [--json]\n"
      "                   [--list-rules] PATH...\n"
      "  PATH          file or directory (scans *.hpp/*.h/*.cpp)\n"
      "  --baseline    suppress fingerprints listed in FILE; new findings\n"
      "                exit 2\n"
      "  --write-baseline  rewrite FILE from current findings; grows are\n"
      "                rejected (exit 3) — the ratchet only shrinks\n"
      "  --rule NAME   with --write-baseline: rewrite only NAME's entries,\n"
      "                leaving every other rule's slice byte-identical\n"
      "  --layering    enable the `layering` rule against the module DAG in\n"
      "                FILE (scripts/layering.txt)\n"
      "  --src-root    resolve quoted includes against DIR (inferred from\n"
      "                the first scanned path containing a src/ component)\n"
      "  --json        machine-readable findings on stdout\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string layering_path;
  std::string src_root;
  std::string rule_scope;
  bool write_baseline = false;
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (++i >= argc) return usage();
      baseline_path = argv[i];
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--rule") {
      if (++i >= argc) return usage();
      rule_scope = argv[i];
      if (!is_known_rule(rule_scope)) {
        std::fprintf(stderr, "bicord-lint: unknown rule '%s' (see --list-rules)\n",
                     rule_scope.c_str());
        return 1;
      }
    } else if (arg == "--layering") {
      if (++i >= argc) return usage();
      layering_path = argv[i];
    } else if (arg == "--src-root") {
      if (++i >= argc) return usage();
      src_root = argv[i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const auto& r : kAllRules) std::printf("%s\n", r.c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bicord-lint: unknown option %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();
  if (write_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "bicord-lint: --write-baseline requires --baseline\n");
    return 1;
  }
  if (!rule_scope.empty() && !write_baseline) {
    std::fprintf(stderr, "bicord-lint: --rule only scopes --write-baseline\n");
    return 1;
  }

  // Expand directories; scan files in sorted order for stable output.
  std::vector<std::string> files;
  for (const auto& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(p, ec)) {
        if (!e.is_regular_file()) continue;
        const std::string ext = e.path().extension().string();
        if (ext == ".hpp" || ext == ".h" || ext == ".cpp") {
          files.push_back(normalize_path(e.path().generic_string()));
        }
      }
    } else {
      files.push_back(normalize_path(p));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Infer --src-root: the prefix through the first `src` component of any
  // scanned path, so fixture trees and the real tree both resolve includes
  // without extra flags.
  if (src_root.empty()) {
    for (const auto& f : files) {
      const std::string norm = normalize_path(f);
      if (norm.rfind("src/", 0) == 0) {
        src_root = "src";
        break;
      }
      const auto pos = norm.find("/src/");
      if (pos != std::string::npos) {
        src_root = norm.substr(0, pos + 4);
        break;
      }
    }
  }

  LayerConfig layering;
  if (!layering_path.empty()) {
    std::string error;
    if (!load_layering(layering_path, &layering, &error)) {
      std::fprintf(stderr, "bicord-lint: %s\n", error.c_str());
      return 1;
    }
  }

  Linter linter(src_root, std::move(layering));
  for (const auto& f : files) linter.scan(f);
  if (linter.io_error()) return 1;
  linter.finalize();

  bool baseline_exists = false;
  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    baseline = read_baseline(baseline_path, &baseline_exists);
  }

  std::set<std::string> current;
  std::vector<const Finding*> fresh;
  for (const auto& f : linter.findings()) {
    current.insert(f.fingerprint);
    if (!baseline.count(f.fingerprint)) fresh.push_back(&f);
  }

  if (write_baseline) {
    // With --rule the rewrite touches only that rule's slice: every other
    // rule's entries are carried over verbatim, so refreshing one rule can
    // never absorb a regression in another.
    std::set<std::string> next;
    if (rule_scope.empty()) {
      next = current;
    } else {
      for (const auto& b : baseline) {
        if (!fingerprint_has_rule(b, rule_scope)) next.insert(b);
      }
      for (const auto& c : current) {
        if (fingerprint_has_rule(c, rule_scope)) next.insert(c);
      }
    }
    if (baseline_exists) {
      std::vector<std::string> grown;
      std::set_difference(next.begin(), next.end(), baseline.begin(),
                          baseline.end(), std::back_inserter(grown));
      if (!grown.empty()) {
        std::fprintf(stderr,
                     "bicord-lint: ratchet: refusing to grow the baseline by "
                     "%zu finding(s)%s; fix them instead:\n",
                     grown.size(),
                     rule_scope.empty()
                         ? ""
                         : (" (rule " + rule_scope + ")").c_str());
        for (const auto& g : grown) std::fprintf(stderr, "  %s\n", g.c_str());
        return 3;
      }
    }
    std::ofstream out(baseline_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "bicord-lint: cannot write %s\n", baseline_path.c_str());
      return 1;
    }
    out << "# bicord-lint suppression baseline — may only shrink (ratchet).\n"
        << "# Fingerprints: rule:path:token-hash:occurrence. Refresh one\n"
        << "# rule's slice with: scripts/lint.sh refresh-baseline --rule "
           "<name>\n";
    for (const auto& c : next) out << c << "\n";
    std::printf("bicord-lint: baseline written (%zu entries%s)\n", next.size(),
                rule_scope.empty() ? ""
                                   : (", scope " + rule_scope).c_str());
    return 0;
  }

  std::size_t stale = 0;
  for (const auto& b : baseline) {
    if (!current.count(b)) ++stale;
  }

  if (json) {
    std::printf("{\n  \"version\": 2,\n  \"files\": %zu,\n  \"findings\": [",
                files.size());
    bool first = true;
    for (const auto& f : linter.findings()) {
      std::printf("%s\n    {\"path\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
                  "\"message\": \"%s\", \"fingerprint\": \"%s\", "
                  "\"baselined\": %s}",
                  first ? "" : ",", json_escape(f.path).c_str(), f.line,
                  json_escape(f.rule).c_str(), json_escape(f.message).c_str(),
                  json_escape(f.fingerprint).c_str(),
                  baseline.count(f.fingerprint) ? "true" : "false");
      first = false;
    }
    std::printf("%s],\n  \"new\": %zu,\n  \"stale_baseline\": %zu\n}\n",
                first ? "" : "\n  ", fresh.size(), stale);
    return fresh.empty() ? 0 : 2;
  }

  for (const auto* f : fresh) {
    std::printf("%s:%zu: [%s] %s\n", f->path.c_str(), f->line, f->rule.c_str(),
                f->message.c_str());
  }
  // Stale entries mean the code got cleaner than the baseline: remind the
  // operator to ratchet down (not an error — shrinking is the goal).
  if (stale > 0) {
    std::printf(
        "bicord-lint: %zu baseline entr%s no longer needed — ratchet down "
        "with --write-baseline\n",
        stale, stale == 1 ? "y is" : "ies are");
  }
  if (!fresh.empty()) {
    std::printf("bicord-lint: %zu new finding(s)\n", fresh.size());
    return 2;
  }
  std::printf("bicord-lint: clean (%zu file(s), %zu baselined)\n", files.size(),
              current.size());
  return 0;
}
