// bicordsim — run a configurable coexistence simulation from the shell.
//
//   bicordsim --scenario fig10 --scheme ecc --seconds 10
//   bicordsim --scheme bicord --location A --burst-packets 5
//             --burst-interval-ms 200 --seconds 10 --seed 7
//
// Prints the paper's metrics (channel utilization, ZigBee delay
// percentiles, delivery, goodput, Wi-Fi health) for one run. The scenario
// comes from a declarative coex::ScenarioSpec — a named preset or a
// key=value @file — and every knob the evaluation varies is also exposed as
// a flag; explicit flags override the spec.

#include <chrono>
#include <cstdio>
#include <string>

#include <fstream>
#include <iterator>
#include <memory>
#include <vector>

#include "coex/experiment.hpp"
#include "coex/scenario.hpp"
#include "coex/scenario_spec.hpp"
#include "fault/fault_plan.hpp"
#include "fault/invariant_checker.hpp"
#include "phy/tracer.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

using namespace bicord;

namespace {
/// `--scenario` value: a preset name or @file of ScenarioSpec text.
bool load_scenario_spec(const std::string& arg, coex::ScenarioSpec& out) {
  if (arg[0] == '@') {
    const std::string path = arg.substr(1);
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open scenario file '%s'\n", path.c_str());
      return false;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string error;
    const auto spec = coex::ScenarioSpec::parse(text, &error);
    if (!spec) {
      std::fprintf(stderr, "error: bad scenario '%s': %s\n", path.c_str(),
                   error.c_str());
      return false;
    }
    out = *spec;
    return true;
  }
  const auto spec = coex::ScenarioSpec::preset(arg);
  if (!spec) {
    std::fprintf(stderr,
                 "error: unknown scenario preset '%s' (--list-presets shows "
                 "the catalogue, or pass @file)\n",
                 arg.c_str());
    return false;
  }
  out = *spec;
  return true;
}

bool load_fault_plan(const std::string& spec, fault::FaultPlan& out) {
  if (spec.empty()) return true;
  if (spec[0] == '@') {
    const std::string path = spec.substr(1);
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open fault plan file '%s'\n", path.c_str());
      return false;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::string error;
    const auto plan = fault::FaultPlan::parse(text, &error);
    if (!plan) {
      std::fprintf(stderr, "error: bad fault plan '%s': %s\n", path.c_str(),
                   error.c_str());
      return false;
    }
    out = *plan;
    return true;
  }
  const auto plan = fault::FaultPlan::preset(spec);
  if (!plan) {
    std::fprintf(stderr,
                 "error: unknown fault preset '%s' (try cts-loss, detector, rssi, "
                 "burst-shift, frame-loss, clock-jitter, mixed, or @file)\n",
                 spec.c_str());
    return false;
  }
  out = *plan;
  return true;
}
}  // namespace

int main(int argc, char** argv) {
  Flags flags(
      "bicordsim — BiCord/ECC/CSMA coexistence simulation (ICDCS'21 reproduction)");
  flags.add_string("scenario", "",
                   "start from a ScenarioSpec: a preset name (--list-presets) or "
                   "@file with key=value lines; explicit flags override it");
  flags.add_bool("list-presets", false, "list the scenario presets and exit");
  flags.add_string("scheme", "bicord",
                   "coordination scheme: bicord | ecc | csma | lteu | tsch");
  flags.add_string("location", "A", "ZigBee sender location: A | B | C | D (Fig. 6)");
  flags.add_int("burst-packets", 5, "ZigBee packets per burst");
  flags.add_int("burst-payload", 50, "ZigBee payload bytes per packet");
  flags.add_double("burst-interval-ms", 200.0, "mean interval between bursts");
  flags.add_bool("poisson", true, "Poisson burst arrivals (vs fixed interval)");
  flags.add_string("wifi-traffic", "saturated", "Wi-Fi workload: saturated | cbr | priority");
  flags.add_double("wifi-high-share", 0.3, "high-priority share (priority traffic only)");
  flags.add_double("ecc-whitespace-ms", 20.0, "ECC blind white-space length");
  flags.add_double("ecc-period-ms", 100.0, "ECC white-space period");
  flags.add_double("step-ms", 30.0, "BiCord initial white space (learning step)");
  flags.add_bool("person-mobility", false, "someone walks near the Wi-Fi receiver");
  flags.add_bool("device-mobility", false, "the ZigBee sender moves within ~1 m");
  flags.add_int("seconds", 10, "measured simulation time");
  flags.add_int("warmup-seconds", 1, "warm-up before measurement");
  flags.add_int("seed", 1, "RNG seed (runs are bit-reproducible)");
  flags.add_int("repeat", 1,
                "independent repetitions (> 1 reports mean +/- 95% CI over "
                "per-trial seed streams instead of one run's numbers)");
  add_jobs_flag(flags);
  flags.add_int("sim-threads", 1,
                "shard-parallel event dispatch inside one simulation "
                "(1 = serial; output stays bit-identical to serial)");
  flags.add_bool("progress", false, "print per-trial progress to stderr");
  flags.add_string("trace-file", "", "write a JSONL transmission trace to this path");
  flags.add_bool("timeline", false, "print an ASCII timeline of the final 300 ms");
  flags.add_string("fault-plan", "",
                   "inject faults: a preset (cts-loss | detector | rssi | burst-shift | "
                   "frame-loss | clock-jitter | mixed) or @file with one event per line");
  flags.add_string("set", "",
                   "append one spec assignment key=value after every other override "
                   "(e.g. --set medium.spatial_index=false for a brute-force twin "
                   "of an indexed preset)");

  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n\n%s", flags.error().c_str(),
                 flags.usage("bicordsim").c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.usage("bicordsim").c_str());
    return 0;
  }
  if (flags.get_bool("list-presets")) {
    AsciiTable presets;
    presets.set_header({"preset", "scenario"});
    for (const auto& name : coex::ScenarioSpec::preset_names()) {
      presets.add_row({name, coex::ScenarioSpec::preset_summary(name)});
    }
    std::printf("%s", presets.render().c_str());
    return 0;
  }

  coex::ScenarioSpec spec;
  const bool have_scenario = !flags.get_string("scenario").empty();
  if (have_scenario && !load_scenario_spec(flags.get_string("scenario"), spec)) {
    return 2;
  }
  if (spec.is_ble()) {
    std::fprintf(stderr,
                 "error: topology=ble specs drive the BLE extension "
                 "(bench_ext_ble); bicordsim runs the Wi-Fi topology\n");
    return 2;
  }
  // Every scenario flag lowers to a spec key. Without --scenario the flag
  // defaults describe the whole scenario (exactly the spec defaults); with a
  // spec, only flags the user explicitly passed override it.
  const auto overriding = [&](const char* flag) {
    return !have_scenario || flags.provided(flag);
  };
  if (overriding("scheme")) spec.set("coordination", flags.get_string("scheme"));
  if (overriding("location")) spec.set("location", flags.get_string("location"));
  if (overriding("wifi-traffic")) spec.set("wifi.traffic", flags.get_string("wifi-traffic"));
  if (overriding("seed")) spec.set("seed", static_cast<std::uint64_t>(flags.get_int("seed")));
  if (overriding("burst-packets")) {
    spec.set("burst.packets", static_cast<int>(flags.get_int("burst-packets")));
  }
  if (overriding("burst-payload")) {
    spec.set("burst.payload", static_cast<int>(flags.get_int("burst-payload")));
  }
  if (overriding("burst-interval-ms")) {
    spec.set("burst.interval", Duration::from_ms_f(flags.get_double("burst-interval-ms")));
  }
  if (overriding("poisson")) spec.set("burst.poisson", flags.get_bool("poisson"));
  if (overriding("wifi-high-share")) {
    spec.set("wifi.high_share", flags.get_double("wifi-high-share"));
  }
  if (overriding("ecc-whitespace-ms")) {
    spec.set("ecc.whitespace", Duration::from_ms_f(flags.get_double("ecc-whitespace-ms")));
  }
  if (overriding("ecc-period-ms")) {
    spec.set("ecc.period", Duration::from_ms_f(flags.get_double("ecc-period-ms")));
  }
  if (overriding("step-ms")) {
    spec.set("allocator.initial_whitespace",
             Duration::from_ms_f(flags.get_double("step-ms")));
  }
  if (overriding("person-mobility")) {
    spec.set("mobility.person", flags.get_bool("person-mobility"));
  }
  if (overriding("device-mobility")) {
    spec.set("mobility.device", flags.get_bool("device-mobility"));
  }
  if (overriding("sim-threads")) {
    spec.set("sim.threads", static_cast<int>(flags.get_int("sim-threads")));
  }
  if (flags.provided("set")) {
    const std::string& kv = flags.get_string("set");
    const auto eq = kv.find('=');
    if (eq == std::string::npos || eq == 0) {
      std::fprintf(stderr, "error: --set expects key=value (got '%s')\n", kv.c_str());
      return 2;
    }
    const auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t");
      const auto e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string() : s.substr(b, e - b + 1);
    };
    // Appended last: later assignments win, so --set beats spec and flags.
    spec.set(trim(kv.substr(0, eq)), trim(kv.substr(eq + 1)));
  }

  std::string spec_error;
  auto lowered = spec.config(&spec_error);
  if (!lowered) {
    std::fprintf(stderr, "error: %s\n", spec_error.c_str());
    return 2;
  }
  auto cfg = *lowered;
  // --fault-plan handles FaultPlan @files of its own (a different DSL than
  // ScenarioSpec), so it overrides the lowered plan wholesale.
  if (flags.provided("fault-plan") || !have_scenario) {
    if (!load_fault_plan(flags.get_string("fault-plan"), cfg.fault_plan)) return 2;
  }

  const int repeat = static_cast<int>(flags.get_int("repeat"));
  if (repeat < 1) {
    std::fprintf(stderr, "error: --repeat must be >= 1 (got %d)\n", repeat);
    return 2;
  }
  if (repeat > 1) {
    if (!flags.get_string("trace-file").empty() || flags.get_bool("timeline")) {
      std::fprintf(stderr,
                   "error: --trace-file/--timeline record a single run; "
                   "drop --repeat to use them\n");
      return 2;
    }
    coex::ExperimentRunner runner(cfg,
                                  Duration::from_sec(flags.get_int("warmup-seconds")),
                                  Duration::from_sec(flags.get_int("seconds")));
    runner.set_jobs(static_cast<int>(flags.get_int("jobs")));
    if (flags.get_bool("progress")) {
      runner.set_progress([](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r[bicordsim] %zu/%zu trials", done, total);
        if (done == total) std::fprintf(stderr, "\n");
      });
    }
    runner.add_metric("channel utilization (total)", coex::metric_total_utilization());
    runner.add_metric("zigbee utilization", coex::metric_zigbee_utilization());
    runner.add_metric("zigbee delivery ratio", coex::metric_zigbee_delivery());
    runner.add_metric("zigbee mean delay (ms)", coex::metric_zigbee_mean_delay_ms());
    runner.add_metric("zigbee goodput (kbit/s)", coex::metric_zigbee_goodput_kbps());
    const auto summaries = runner.run(repeat);

    std::printf("bicordsim: scheme=%s location=%s base-seed=%llu, %d x %llds measured\n\n",
                coex::to_string(cfg.coordination), coex::to_string(cfg.location),
                static_cast<unsigned long long>(cfg.seed), repeat,
                static_cast<long long>(flags.get_int("seconds")));
    AsciiTable table;
    table.set_header({"metric", "mean", "+/- 95% CI"});
    for (const auto& s : summaries) {
      table.add_row({s.name, AsciiTable::cell(s.stats.mean(), 4),
                     AsciiTable::cell(s.ci95(), 4)});
    }
    std::printf("%s\n%s\n", table.render().c_str(),
                runner.last_report().to_string().c_str());
    return 0;
  }

  coex::Scenario scenario(cfg);
  std::unique_ptr<phy::MediumTracer> tracer;
  if (!flags.get_string("trace-file").empty() || flags.get_bool("timeline")) {
    tracer = std::make_unique<phy::MediumTracer>(scenario.medium(), 1 << 16);
  }
  std::unique_ptr<fault::InvariantChecker> checker;
  if (scenario.fault_injector() != nullptr) {
    std::printf("fault plan (%zu events):\n%s\n", cfg.fault_plan.size(),
                cfg.fault_plan.describe().c_str());
  }
  // The checker rides along whenever there is something to check: injected
  // faults, or a multi-grantor election whose double-grant / handoff-gap
  // invariants are always on.
  if (scenario.fault_injector() != nullptr || scenario.election() != nullptr) {
    checker = std::make_unique<fault::InvariantChecker>(scenario.simulator());
    if (auto* wifi_agent = scenario.bicord_wifi()) checker->watch_wifi(*wifi_agent);
    if (auto* zb_agent = scenario.bicord_zigbee()) checker->watch_zigbee(*zb_agent);
    if (auto* election = scenario.election()) checker->watch_election(*election);
    checker->start();
  }
  scenario.run_for(Duration::from_sec(flags.get_int("warmup-seconds")));
  scenario.start_measurement();
  scenario.run_for(Duration::from_sec(flags.get_int("seconds")));
  if (checker != nullptr) checker->finish(scenario.fault_injector());

  // The parallel-dispatch report goes to stderr so stdout stays byte-identical
  // across sim.threads settings (the determinism gate diffs stdout).
  if (const auto* dispatcher = scenario.dispatcher()) {
    const auto st = dispatcher->stats();
    const auto* plan = scenario.shard_plan();
    std::fprintf(stderr,
                 "[parallel] sim.threads=%d shards=%d lookahead=%lldus "
                 "cross-shard-pairs=%zu windows=%llu sharded=%llu "
                 "barrier=%llu deferred=%llu\n",
                 scenario.sim_threads(), plan != nullptr ? plan->shards : 0,
                 static_cast<long long>(plan != nullptr ? plan->lookahead.us() : 0),
                 plan != nullptr ? plan->cross_shard_pairs : std::size_t{0},
                 static_cast<unsigned long long>(st.windows),
                 static_cast<unsigned long long>(st.sharded_events),
                 static_cast<unsigned long long>(st.barrier_events),
                 static_cast<unsigned long long>(st.deferred_events));
  }

  const auto util = scenario.utilization();
  const auto& zb = scenario.zigbee_stats();

  std::printf("bicordsim: scheme=%s location=%s seed=%llu, %llds measured\n\n",
              coex::to_string(cfg.coordination), coex::to_string(cfg.location),
              static_cast<unsigned long long>(cfg.seed),
              static_cast<long long>(flags.get_int("seconds")));

  AsciiTable table;
  table.set_header({"metric", "value"});
  table.add_row({"channel utilization (total)", AsciiTable::percent(util.total)});
  table.add_row({"  wifi / zigbee share", AsciiTable::percent(util.wifi) + " / " +
                                              AsciiTable::percent(util.zigbee)});
  table.add_row({"zigbee packets generated",
                 AsciiTable::cell(static_cast<std::int64_t>(zb.generated))});
  table.add_row({"zigbee delivery ratio", AsciiTable::percent(zb.delivery_ratio())});
  if (!zb.delay_ms.empty()) {
    table.add_row({"zigbee delay mean / p50", AsciiTable::cell(zb.delay_ms.mean(), 1) +
                                                  " / " +
                                                  AsciiTable::cell(zb.delay_ms.median(), 1) +
                                                  " ms"});
    table.add_row({"zigbee delay p95 / max",
                   AsciiTable::cell(zb.delay_ms.quantile(0.95), 1) + " / " +
                       AsciiTable::cell(zb.delay_ms.max(), 1) + " ms"});
  }
  table.add_row({"zigbee goodput", AsciiTable::cell(scenario.zigbee_goodput_kbps(), 2) +
                                       " kbit/s"});
  table.add_row({"wifi delivery ratio", AsciiTable::percent(scenario.wifi_delivery_ratio())});
  if (auto* agent = scenario.bicord_zigbee()) {
    table.add_row({"control packets sent",
                   AsciiTable::cell(static_cast<std::int64_t>(agent->control_packets_sent()))});
  } else if (auto* req = scenario.tsch_requester()) {
    table.add_row({"control packets sent",
                   AsciiTable::cell(static_cast<std::int64_t>(req->control_packets_sent()))});
  }
  if (auto* wifi_agent = scenario.bicord_wifi()) {
    table.add_row({"white spaces granted",
                   AsciiTable::cell(static_cast<std::int64_t>(
                       wifi_agent->whitespaces_granted()))});
    table.add_row({"converged white space",
                   AsciiTable::cell(wifi_agent->allocator().estimate().ms(), 1) + " ms"});
  } else if (auto* grantor = scenario.lteu_grantor()) {
    table.add_row({"white spaces granted (eNB leases)",
                   AsciiTable::cell(static_cast<std::int64_t>(
                       grantor->suppressions_granted()))});
    table.add_row({"converged white space",
                   AsciiTable::cell(grantor->allocator().estimate().ms(), 1) + " ms"});
    table.add_row({"eNB bursts / cycles suppressed",
                   AsciiTable::cell(static_cast<std::int64_t>(
                       scenario.lteu_device()->bursts_sent())) +
                       " / " +
                       AsciiTable::cell(static_cast<std::int64_t>(
                           scenario.lteu_device()->cycles_suppressed()))});
  }
  if (auto* schedule = scenario.tsch_schedule()) {
    table.add_row({"tsch hops",
                   AsciiTable::cell(static_cast<std::int64_t>(schedule->hops()))});
  }
  if (const auto* injector = scenario.fault_injector()) {
    const auto& c = injector->counters();
    table.add_row({"faults injected (total)",
                   AsciiTable::cell(static_cast<std::int64_t>(c.total()))});
    table.add_row({"  frames corrupted / dropped",
                   AsciiTable::cell(static_cast<std::int64_t>(c.cts_corrupted +
                                                              c.frames_corrupted)) +
                       " / " +
                       AsciiTable::cell(static_cast<std::int64_t>(c.controls_dropped))});
    if (auto* wifi_agent = scenario.bicord_wifi()) {
      table.add_row(
          {"  watchdog recoveries",
           AsciiTable::cell(static_cast<std::int64_t>(wifi_agent->watchdog_recoveries()))});
    }
    if (auto* zb_agent = scenario.bicord_zigbee()) {
      table.add_row({"  zigbee give-ups (CSMA fallback)",
                     AsciiTable::cell(static_cast<std::int64_t>(zb_agent->give_ups()))});
    }
  }
  if (const auto* election = scenario.election()) {
    table.add_row({"grantors (primary node)",
                   AsciiTable::cell(static_cast<std::int64_t>(election->member_count())) +
                       " (node " +
                       AsciiTable::cell(static_cast<std::int64_t>(
                           election->member_node(election->primary()))) +
                       ")"});
    table.add_row({"  takeovers / shadowed CTS",
                   AsciiTable::cell(static_cast<std::int64_t>(election->takeovers())) +
                       " / " +
                       AsciiTable::cell(static_cast<std::int64_t>(election->shadowed_cts()))});
    const auto gap = election->max_handoff_gap();
    table.add_row({"  max handoff gap",
                   gap.has_value()
                       ? AsciiTable::cell(gap->ms(), 1) + " ms (bound " +
                             AsciiTable::cell(election->handoff_bound().ms(), 1) + " ms)"
                       : std::string("none")});
  }
  if (checker != nullptr) {
    table.add_row({"invariant checks / violations",
                   AsciiTable::cell(static_cast<std::int64_t>(checker->checks_run())) +
                       " / " +
                       AsciiTable::cell(static_cast<std::int64_t>(
                           checker->violations().size()))});
  }
  std::printf("%s", table.render().c_str());
  if (checker != nullptr && !checker->ok()) {
    std::fprintf(stderr, "\ninvariant violations:\n%s\n", checker->report().c_str());
  }

  if (tracer != nullptr) {
    if (flags.get_bool("timeline")) {
      const TimePoint end = scenario.simulator().now();
      std::printf("\n%s",
                  tracer->render_timeline(end - Duration::from_ms(300), end).c_str());
    }
    const std::string path = flags.get_string("trace-file");
    if (!path.empty()) {
      // The tracer buffers every record in memory during the run, so the
      // file write happens exactly once, here at exit, through a 1 MiB
      // stream buffer (the default 8 KiB filebuf makes a syscall every few
      // dozen JSONL lines). Write time goes to stderr: it is wallclock, not
      // simulation output, and stdout must stay byte-identical across runs.
      const auto write_start = std::chrono::steady_clock::now();
      std::vector<char> stream_buf(1 << 20);
      std::ofstream out;
      out.rdbuf()->pubsetbuf(stream_buf.data(),
                             static_cast<std::streamsize>(stream_buf.size()));
      out.open(path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "error: cannot open trace file '%s'\n", path.c_str());
        return 1;
      }
      tracer->write_jsonl(out);
      out.flush();
      if (!out) {
        std::fprintf(stderr, "error: short write to trace file '%s'\n", path.c_str());
        return 1;
      }
      const double write_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                    write_start)
              .count();
      std::fprintf(stderr, "trace: write took %.2f ms\n", write_ms);
      std::printf("\ntrace: %zu transmissions written to %s\n",
                  tracer->records().size(), path.c_str());
    }
  }
  return (checker != nullptr && !checker->ok()) ? 1 : 0;
}
