// Quickstart: one BiCord-coordinated ZigBee/Wi-Fi pair in the paper's office
// testbed. Runs ten simulated seconds of saturated Wi-Fi traffic with
// periodic ZigBee bursts, then prints the coordination outcome next to an
// ECC and a plain-CSMA run of the same workload.

#include <cstdio>

#include "coex/scenario.hpp"
#include "coex/scenario_spec.hpp"
#include "phy/tracer.hpp"
#include "util/table.hpp"

using namespace bicord;
using namespace bicord::time_literals;

namespace {
struct RunResult {
  coex::UtilizationReport util;
  double delay_ms = 0.0;
  double delivery = 0.0;
  double goodput_kbps = 0.0;
};

RunResult run(coex::Coordination scheme) {
  // The default preset is the paper testbed (location A, bursts of 5 x 50 B
  // every ~200 ms under saturated Wi-Fi); only seed and scheme vary here.
  auto spec = *coex::ScenarioSpec::preset("default");
  spec.set("seed", 7);
  spec.set("coordination", coex::to_string(scheme));

  coex::Scenario scenario(spec.must_config());
  coex::warm_and_measure(scenario, 1_sec, 10_sec);

  RunResult r;
  r.util = scenario.utilization();
  const auto& stats = scenario.zigbee_stats();
  r.delay_ms = stats.delay_ms.empty() ? 0.0 : stats.delay_ms.mean();
  r.delivery = stats.delivery_ratio();
  r.goodput_kbps = scenario.zigbee_goodput_kbps();
  return r;
}
}  // namespace

int main() {
  std::printf("BiCord quickstart — 10 s of coexistence at location A\n");
  std::printf("(ZigBee: bursts of 5 x 50 B every ~200 ms; Wi-Fi: saturated)\n\n");

  AsciiTable table;
  table.set_header({"scheme", "total util", "wifi util", "zigbee util",
                    "zb delay (ms)", "zb delivery", "zb goodput (kbps)"});
  for (auto scheme : {coex::Coordination::BiCord, coex::Coordination::Ecc,
                      coex::Coordination::Csma}) {
    const RunResult r = run(scheme);
    table.add_row({coex::to_string(scheme), AsciiTable::percent(r.util.total),
                   AsciiTable::percent(r.util.wifi), AsciiTable::percent(r.util.zigbee),
                   AsciiTable::cell(r.delay_ms, 1), AsciiTable::percent(r.delivery),
                   AsciiTable::cell(r.goodput_kbps, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("BiCord should show high total utilization with low ZigBee delay;\n"
              "ECC trades utilization for blind reservations; CSMA loses most\n"
              "ZigBee packets to cross-technology interference.\n\n");

  // Show one coordination round on the air: control packets (s), the CTS
  // (C) opening the white space, the protected ZigBee burst (Z).
  {
    auto spec = *coex::ScenarioSpec::preset("default");
    spec.set("seed", 7);
    coex::Scenario scenario(spec.must_config());
    phy::MediumTracer tracer(scenario.medium());
    scenario.run_for(2_sec);
    // Centre the view on the last CTS (the white-space reservation).
    TimePoint cts = scenario.simulator().now() - Duration::from_ms(150);
    for (const auto& r : tracer.records()) {
      if (r.kind == phy::FrameKind::Cts) cts = r.start;
    }
    std::printf("%s", tracer
                          .render_timeline(cts - Duration::from_ms(30),
                                           cts + Duration::from_ms(90))
                          .c_str());
  }
  return 0;
}
