// Smart home: the coexistence scenario from the paper's introduction.
//
// A Wi-Fi access point streams bulk traffic to a laptop while a ZigBee
// motion sensor reports bursts of events. Without coordination the sensor's
// packets die under Wi-Fi interference; with BiCord, the sensor requests
// white spaces on demand and the stream barely notices. The example also
// demonstrates the CTI-detection pipeline: the sensor first verifies that
// the interference actually *is* Wi-Fi (a Bluetooth speaker and a microwave
// oven run in the same room) before signaling.

#include <cstdio>

#include "coex/cti_training.hpp"
#include "coex/scenario.hpp"
#include "coex/scenario_spec.hpp"
#include "interferers/bluetooth.hpp"
#include "interferers/microwave.hpp"
#include "util/table.hpp"

using namespace bicord;
using namespace bicord::time_literals;

int main() {
  std::printf("Smart-home coexistence demo\n");
  std::printf("---------------------------\n");
  std::printf("AP -> laptop bulk stream + ZigBee motion sensor + Bluetooth\n"
              "speaker + microwave oven, with the full CTI-detection pipeline.\n\n");

  // 1. Train the CTI pipeline (decision tree + device fingerprints) the way
  //    a deployed sensor would be provisioned.
  std::printf("[1/3] training CTI detection pipeline...\n");
  coex::CtiTrainingConfig train_cfg;
  train_cfg.seed = 42;
  train_cfg.segments_per_source = 120;
  auto pipeline = coex::train_cti_pipeline(train_cfg);
  std::printf("      Wi-Fi detection accuracy: %.1f%%, device id accuracy: %.1f%%\n\n",
              pipeline.wifi_detection_accuracy * 100.0,
              pipeline.device_accuracy * 100.0);

  // 2. Build the home: BiCord scenario plus the two non-Wi-Fi interferers.
  std::printf("[2/3] running 12 s of the smart home under BiCord...\n");
  auto spec = *coex::ScenarioSpec::preset("default");
  spec.set("seed", 7);
  spec.set("burst.packets", 4);
  spec.set("burst.payload", 40);  // motion events
  spec.set("burst.interval", 300_ms);
  coex::Scenario home(spec.must_config());

  // The sensor runs the trained pipeline before each signaling decision.
  auto* sensor = home.bicord_zigbee();
  sensor->set_classifier(&pipeline.classifier);
  sensor->set_device_identifier(&pipeline.identifier);
  detect::PowerMap power_map(0.0);
  for (int device = 0; device < pipeline.identifier.cluster_count(); ++device) {
    power_map.set(device, 0.0);  // pre-negotiated per-AP signaling power
  }
  sensor->set_power_map(power_map);

  const auto bt_node = home.medium().add_node("bt-speaker", {2.0, 3.0});
  interferers::BluetoothDevice speaker(home.medium(), bt_node);
  speaker.start();
  const auto mw_node = home.medium().add_node("microwave", {5.0, 3.5});
  interferers::MicrowaveOven oven(home.medium(), mw_node);

  home.run_for(1_sec);
  home.start_measurement();
  home.run_for(5_sec);
  oven.start();  // someone heats dinner mid-run
  home.run_for(3_sec);
  oven.stop();
  home.run_for(4_sec);

  // 3. Report.
  std::printf("[3/3] results\n\n");
  const auto util = home.utilization();
  const auto& stats = home.zigbee_stats();
  AsciiTable table;
  table.set_header({"metric", "value"});
  table.add_row({"sensor events delivered",
                 AsciiTable::cell(static_cast<std::int64_t>(stats.delivered)) + " / " +
                     AsciiTable::cell(static_cast<std::int64_t>(stats.generated))});
  table.add_row({"sensor mean delay",
                 AsciiTable::cell(stats.delay_ms.empty() ? 0.0 : stats.delay_ms.mean(), 1) +
                     " ms"});
  table.add_row({"AP stream delivery", AsciiTable::percent(home.wifi_delivery_ratio())});
  table.add_row({"total channel utilization", AsciiTable::percent(util.total)});
  table.add_row({"white spaces granted",
                 AsciiTable::cell(static_cast<std::int64_t>(
                     home.bicord_wifi()->whitespaces_granted()))});
  table.add_row({"control packets sent",
                 AsciiTable::cell(static_cast<std::int64_t>(sensor->control_packets_sent()))});
  table.add_row({"CTI samples taken",
                 AsciiTable::cell(static_cast<std::int64_t>(sensor->cti_samples_taken()))});
  table.add_row({"non-Wi-Fi verdicts (BT/oven)",
                 AsciiTable::cell(static_cast<std::int64_t>(sensor->non_wifi_detections()))});
  std::printf("%s\n", table.render().c_str());
  std::printf("The sensor coordinates only with Wi-Fi: Bluetooth and microwave\n"
              "activity is classified and skipped rather than signaled at.\n");
  return 0;
}
