// Industrial monitoring: safety-critical ZigBee telemetry under heavy Wi-Fi.
//
// A vibration sensor on a machine emits 8-packet bursts that must reach the
// controller with bounded latency. The factory Wi-Fi is saturated. The
// example contrasts all three schemes and prints delay percentiles — the
// paper's core argument is that only bidirectional coordination bounds the
// tail ("unbounded delays ... unacceptable for safety-critical ZigBee
// applications", Sec. III-A).

#include <cstdio>

#include "coex/scenario.hpp"
#include "coex/scenario_spec.hpp"
#include "util/table.hpp"

using namespace bicord;
using namespace bicord::time_literals;

namespace {
struct Result {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double delivery = 0.0;
  double util = 0.0;
};

Result run(coex::Coordination scheme, Duration ecc_whitespace) {
  auto spec = *coex::ScenarioSpec::preset("default");
  spec.set("seed", 2026);
  spec.set("coordination", coex::to_string(scheme));
  spec.set("location", "C");  // sensor sits mid-factory
  spec.set("burst.packets", 8);
  spec.set("burst.payload", 60);
  spec.set("burst.interval", 250_ms);
  spec.set("ecc.whitespace", ecc_whitespace);
  coex::Scenario sc(spec.must_config());
  coex::warm_and_measure(sc, 1_sec, 25_sec);

  Result r;
  const auto& stats = sc.zigbee_stats();
  if (!stats.delay_ms.empty()) {
    r.p50 = stats.delay_ms.quantile(0.5);
    r.p95 = stats.delay_ms.quantile(0.95);
    r.p99 = stats.delay_ms.quantile(0.99);
    r.max = stats.delay_ms.max();
  }
  r.delivery = stats.delivery_ratio();
  r.util = sc.utilization().total;
  return r;
}
}  // namespace

int main() {
  std::printf("Industrial monitoring — delay tails of safety-critical telemetry\n");
  std::printf("(8 x 60 B vibration bursts every ~250 ms under saturated Wi-Fi)\n\n");

  AsciiTable table;
  table.set_header({"scheme", "p50 (ms)", "p95 (ms)", "p99 (ms)", "max (ms)",
                    "delivery", "channel util"});
  struct Spec {
    const char* name;
    coex::Coordination c;
    Duration ws;
  };
  for (const auto& spec : {Spec{"BiCord", coex::Coordination::BiCord, 0_ms},
                           Spec{"ECC-30ms", coex::Coordination::Ecc, 30_ms},
                           Spec{"CSMA", coex::Coordination::Csma, 0_ms}}) {
    const Result r = run(spec.c, spec.ws);
    table.add_row({spec.name, AsciiTable::cell(r.p50, 1), AsciiTable::cell(r.p95, 1),
                   AsciiTable::cell(r.p99, 1), AsciiTable::cell(r.max, 1),
                   AsciiTable::percent(r.delivery), AsciiTable::percent(r.util)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("BiCord's on-demand white spaces bound the tail; ECC's blind periodic\n"
              "reservations stretch it; uncoordinated CSMA barely delivers at all.\n");
  return 0;
}
