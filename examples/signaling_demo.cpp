// Cross-technology signaling, frame by frame.
//
// Reproduces the paper's Fig. 3 intuition in text form: the CSI jitter
// stream at the Wi-Fi receiver under (a) noise only, and (b) a ZigBee node
// transmitting 1, 2, and 3 control packets — then shows the detector's
// continuity rule (N=2 within 5 ms) firing on the packets but not on the
// isolated noise impulses.

#include <cstdio>

#include "coex/scenario.hpp"
#include "csi/csi_detector.hpp"
#include "csi/csi_model.hpp"
#include "wifi/traffic.hpp"

using namespace bicord;
using namespace bicord::time_literals;

namespace {
void render_samples(const std::vector<csi::CsiSample>& samples, double threshold,
                    TimePoint start) {
  // One character per CSI sample: '.' slight jitter, '#' high fluctuation.
  std::printf("  CSI  ");
  for (const auto& s : samples) std::printf("%c", s.amplitude > threshold ? '#' : '.');
  std::printf("\n  time %.0f..%.0f ms, %zu samples\n",
              (samples.front().time - start).ms() + 0.0,
              (samples.back().time - start).ms(), samples.size());
}
}  // namespace

int main() {
  std::printf("Cross-technology signaling demo (paper Fig. 3 + Sec. V)\n");
  std::printf("=======================================================\n\n");

  sim::Simulator sim(99);
  phy::Medium medium(sim, phy::PathLossModel{40.0, 3.0, 0.0, 0.1});
  const auto e = medium.add_node("wifi-E", {0.0, 0.0});
  const auto f = medium.add_node("wifi-F", {3.0, 0.0});
  const auto z = medium.add_node("zigbee", coex::location_position(coex::ZigbeeLocation::A));

  wifi::WifiMac::Config wc;
  wc.channel = 11;
  // Calibrated office ED behaviour (see coex::Scenario): without the
  // narrowband desensitisation the sender would defer during every ZigBee
  // control packet and there would be no CSI stream to disturb.
  wc.ed_threshold_dbm = -51.0;
  wc.cca_noise_sigma_db = 2.0;
  wifi::WifiMac sender(medium, e, wc);
  wifi::WifiMac receiver(medium, f, wc);
  zigbee::ZigbeeMac::Config zc;
  zc.channel = 24;
  zigbee::ZigbeeMac zigbee_node(medium, z, zc);

  wifi::CbrSource cbr(sender, f, 100, 1_ms);
  cbr.start();

  csi::CsiModelParams csi_params;
  csi_params.impulse_prob = 0.02;  // exaggerate noise for the demo
  csi::CsiStream stream(sim, csi_params);
  csi::CsiDetector detector;
  receiver.set_rx_hook([&](const phy::RxResult& rx) { stream.on_frame(rx); });

  std::vector<csi::CsiSample> window;
  stream.set_sample_callback([&](const csi::CsiSample& s) { window.push_back(s); });
  std::vector<TimePoint> detections;
  detector.set_detection_callback([&](TimePoint t) { detections.push_back(t); });
  stream.set_sample_callback([&](const csi::CsiSample& s) {
    window.push_back(s);
    detector.add_sample(s);
  });

  const double threshold = detector.params().threshold;

  // (a) noise only
  sim.run_for(20_ms);
  window.clear();
  const TimePoint a_start = sim.now();
  sim.run_for(60_ms);
  std::printf("(a) noise only — isolated impulses, no detection expected\n");
  render_samples(window, threshold, a_start);
  std::printf("  detections: %zu\n\n", detections.size());

  // (b) 1, 2, 3 control packets
  for (int packets = 1; packets <= 3; ++packets) {
    window.clear();
    detections.clear();
    const TimePoint b_start = sim.now();
    for (int i = 0; i < packets; ++i) {
      sim.after(Duration::from_ms(10 + i * 5), [&] {
        zigbee::ZigbeeMac::SendRequest control;
        control.dst = phy::kBroadcastNode;
        control.payload_bytes = 120;
        control.kind = phy::FrameKind::Control;
        zigbee_node.send_raw(control);
      });
    }
    sim.run_for(60_ms);
    std::printf("(b) %d control packet%s of 120 B\n", packets, packets > 1 ? "s" : "");
    render_samples(window, threshold, b_start);
    std::printf("  detections: %zu%s\n\n", detections.size(),
                detections.empty() ? " (channel fade can hide a single packet)" : "");
  }

  std::printf("The detector needs N=2 high-fluctuation samples within T=5 ms —\n"
              "continuity separates ZigBee signal from impulsive noise (Sec. V).\n");
  return 0;
}
